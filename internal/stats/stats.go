// Package stats provides the optimizer's statistics layer: per-column
// statistics, equi-depth histograms, and selectivity estimation for selection
// and join predicates. Histogram creation is itself one of the paper's
// speculative manipulations (Section 3.2): creating a histogram during user
// think-time sharpens the optimizer's estimates for the final query.
package stats

import (
	"fmt"
	"sort"
	"sync"

	"specdb/internal/tuple"
)

// Default selectivities used when no statistics are available — the classic
// System-R magic numbers.
const (
	DefaultEqSelectivity    = 0.10
	DefaultRangeSelectivity = 1.0 / 3.0
	DefaultNeSelectivity    = 0.90
)

// ColumnStats summarizes one column of one relation. Count/Distinct/Min/Max
// are set once at collection time and immutable afterwards; the histogram
// pointer is attached and detached by speculative manipulations, possibly
// from another session, so it sits behind its own lock.
type ColumnStats struct {
	Count    int64 // rows (including the column's duplicates)
	Distinct int64
	// Min/Max are valid when HasRange is true (numeric or string columns
	// with at least one row).
	HasRange bool
	Min, Max tuple.Value

	mu   sync.Mutex
	hist *Histogram
}

// Hist returns the column's histogram, or nil when none has been created.
// Safe on a nil receiver.
func (c *ColumnStats) Hist() *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hist
}

// SetHist attaches (or, with nil, detaches) the column's histogram.
func (c *ColumnStats) SetHist(h *Histogram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hist = h
}

// EstimateSelectivity estimates the fraction of rows satisfying
// "column op constant".
func (c *ColumnStats) EstimateSelectivity(op tuple.CmpOp, constant tuple.Value) float64 {
	if c == nil || c.Count == 0 {
		return defaultSelectivity(op)
	}
	if h := c.Hist(); h != nil && constant.IsNumeric() {
		return h.Selectivity(op, constant.AsFloat())
	}
	switch op {
	case tuple.CmpEQ:
		if c.Distinct > 0 {
			return clamp01(1 / float64(c.Distinct))
		}
		return DefaultEqSelectivity
	case tuple.CmpNE:
		if c.Distinct > 0 {
			return clamp01(1 - 1/float64(c.Distinct))
		}
		return DefaultNeSelectivity
	case tuple.CmpLT, tuple.CmpLE, tuple.CmpGT, tuple.CmpGE:
		if c.HasRange && c.Min.IsNumeric() && constant.IsNumeric() {
			return interpolate(op, c.Min.AsFloat(), c.Max.AsFloat(), constant.AsFloat())
		}
		return DefaultRangeSelectivity
	default:
		return defaultSelectivity(op)
	}
}

func defaultSelectivity(op tuple.CmpOp) float64 {
	switch op {
	case tuple.CmpEQ:
		return DefaultEqSelectivity
	case tuple.CmpNE:
		return DefaultNeSelectivity
	default:
		return DefaultRangeSelectivity
	}
}

// interpolate assumes a uniform distribution over [min, max] — the estimate a
// System-R optimizer makes *without* a histogram. On the skewed fields of the
// paper's dataset this is exactly the estimate histograms improve upon.
func interpolate(op tuple.CmpOp, min, max, c float64) float64 {
	if max <= min {
		return DefaultRangeSelectivity
	}
	frac := (c - min) / (max - min)
	frac = clamp01(frac)
	switch op {
	case tuple.CmpLT, tuple.CmpLE:
		return frac
	default: // GT, GE
		return 1 - frac
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// CollectColumnStats computes Count/Distinct/Min/Max from a column's values.
// Histograms are built separately (BuildHistogram) because histogram creation
// is a distinct, costed manipulation.
func CollectColumnStats(values []tuple.Value) *ColumnStats {
	cs := &ColumnStats{Count: int64(len(values))}
	if len(values) == 0 {
		return cs
	}
	distinct := make(map[string]struct{}, len(values))
	var keyBuf []byte
	cs.Min, cs.Max = values[0], values[0]
	for _, v := range values {
		keyBuf = tuple.EncodeKey(keyBuf[:0], v)
		distinct[string(keyBuf)] = struct{}{}
		if v.Compare(cs.Min) < 0 {
			cs.Min = v
		}
		if v.Compare(cs.Max) > 0 {
			cs.Max = v
		}
	}
	cs.Distinct = int64(len(distinct))
	cs.HasRange = true
	return cs
}

// Bucket is one equi-depth histogram bucket over [Lo, Hi].
type Bucket struct {
	Lo, Hi   float64
	Count    int64
	Distinct int64
}

// Histogram is an equi-depth histogram over a numeric column.
type Histogram struct {
	Buckets []Bucket
	Total   int64
}

// BuildHistogram constructs an equi-depth histogram with at most numBuckets
// buckets from the given numeric values. Non-numeric values are rejected.
func BuildHistogram(values []tuple.Value, numBuckets int) (*Histogram, error) {
	if numBuckets <= 0 {
		return nil, fmt.Errorf("stats: numBuckets must be positive, got %d", numBuckets)
	}
	xs := make([]float64, 0, len(values))
	for _, v := range values {
		if !v.IsNumeric() {
			return nil, fmt.Errorf("stats: histogram over non-numeric kind %v", v.Kind)
		}
		xs = append(xs, v.AsFloat())
	}
	sort.Float64s(xs)
	h := &Histogram{Total: int64(len(xs))}
	if len(xs) == 0 {
		return h, nil
	}
	depth := (len(xs) + numBuckets - 1) / numBuckets
	for start := 0; start < len(xs); {
		end := start + depth
		if end > len(xs) {
			end = len(xs)
		}
		// Extend the bucket so equal values never straddle a boundary;
		// otherwise equality estimates near boundaries double-count.
		for end < len(xs) && xs[end] == xs[end-1] {
			end++
		}
		b := Bucket{Lo: xs[start], Hi: xs[end-1], Count: int64(end - start)}
		d := int64(1)
		for i := start + 1; i < end; i++ {
			if xs[i] != xs[i-1] {
				d++
			}
		}
		b.Distinct = d
		h.Buckets = append(h.Buckets, b)
		start = end
	}
	return h, nil
}

// Selectivity estimates the fraction of rows with "value op c".
func (h *Histogram) Selectivity(op tuple.CmpOp, c float64) float64 {
	if h == nil || h.Total == 0 {
		return defaultSelectivity(op)
	}
	switch op {
	case tuple.CmpEQ:
		return clamp01(h.estimateEq(c))
	case tuple.CmpNE:
		return clamp01(1 - h.estimateEq(c))
	case tuple.CmpLT:
		return clamp01(h.estimateLess(c, false))
	case tuple.CmpLE:
		return clamp01(h.estimateLess(c, true))
	case tuple.CmpGT:
		return clamp01(1 - h.estimateLess(c, true))
	case tuple.CmpGE:
		return clamp01(1 - h.estimateLess(c, false))
	default:
		return defaultSelectivity(op)
	}
}

func (h *Histogram) estimateEq(c float64) float64 {
	for _, b := range h.Buckets {
		if c < b.Lo || c > b.Hi {
			continue
		}
		if b.Distinct == 0 {
			continue
		}
		// Uniform-within-bucket: each distinct value holds count/distinct rows.
		return float64(b.Count) / float64(b.Distinct) / float64(h.Total)
	}
	return 0
}

// estimateLess returns the estimated fraction with value < c (or ≤ c when
// inclusive), using linear interpolation within the straddling bucket.
func (h *Histogram) estimateLess(c float64, inclusive bool) float64 {
	var below float64
	for _, b := range h.Buckets {
		switch {
		case b.Hi < c:
			below += float64(b.Count)
		case b.Lo > c:
			// entire bucket above
		default: // straddling bucket
			var frac float64
			if b.Hi > b.Lo {
				frac = (c - b.Lo) / (b.Hi - b.Lo)
			} else if inclusive {
				frac = 1 // single-value bucket equal to c
			}
			below += frac * float64(b.Count)
		}
	}
	sel := below / float64(h.Total)
	if inclusive {
		sel += h.estimateEq(c) * 0.5 // nudge toward including the point mass
	}
	return sel
}

// EstimateJoinSelectivity estimates the selectivity of an equi-join between
// two columns with the given statistics: 1/max(distinct_l, distinct_r), the
// standard textbook formula.
func EstimateJoinSelectivity(l, r *ColumnStats) float64 {
	dl, dr := int64(0), int64(0)
	if l != nil {
		dl = l.Distinct
	}
	if r != nil {
		dr = r.Distinct
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d <= 0 {
		return DefaultEqSelectivity
	}
	return 1 / float64(d)
}
