// Package qgraph implements query graphs exactly as Section 2 of the paper
// defines them: each relation in a conjunctive (select-project-join) query is
// a vertex; each join between two relations is an edge between their
// vertices; each selection is an edge to a constant vertex. The vertices and
// edges are the *atomic parts* of the query, and the set operators ⊆, ∪, ∩
// over those parts are what Theorem 3.1's cost reduction, materialized-view
// matching, and the Learner all run on.
//
// The graph model matches the paper's visual interface: a relation appears at
// most once per query (no self-joins), joins are equality joins, and
// selections compare a column to a constant.
package qgraph

import (
	"fmt"
	"sort"
	"strings"

	"specdb/internal/tuple"
)

// Selection is a selection edge: relation vertex → constant vertex.
type Selection struct {
	Rel   string
	Col   string
	Op    tuple.CmpOp
	Const tuple.Value
}

// Key is a canonical identity for the selection, usable as a map key.
func (s Selection) Key() string {
	return fmt.Sprintf("σ|%s|%s|%s|%d|%s", s.Rel, s.Col, s.Op, s.Const.Kind, s.Const.String())
}

// String renders the selection as SQL text.
func (s Selection) String() string {
	return fmt.Sprintf("%s.%s %s %s", s.Rel, s.Col, s.Op, s.Const)
}

// Join is an equi-join edge between two relation vertices. It is stored
// normalized: (LeftRel, LeftCol) ≤ (RightRel, RightCol) lexicographically, so
// R.a=S.b and S.b=R.a are the same edge.
type Join struct {
	LeftRel, LeftCol   string
	RightRel, RightCol string
}

// NewJoin builds a normalized join edge. Joining a relation to itself panics:
// the interface model excludes self-joins, and every input boundary (session
// AddJoin/RemoveJoin, trace.Validate) screens for them first, so reaching
// this panic means internal code constructed an impossible edge.
func NewJoin(rel1, col1, rel2, col2 string) Join {
	if rel1 == rel2 {
		// invariant: every input boundary screens self-joins (see doc
		// comment), so this edge can only come from internal code.
		panic("qgraph: self-join on " + rel1)
	}
	if rel1 > rel2 {
		rel1, col1, rel2, col2 = rel2, col2, rel1, col1
	}
	return Join{LeftRel: rel1, LeftCol: col1, RightRel: rel2, RightCol: col2}
}

// Key is a canonical identity for the join, usable as a map key.
func (j Join) Key() string {
	return fmt.Sprintf("⋈|%s|%s|%s|%s", j.LeftRel, j.LeftCol, j.RightRel, j.RightCol)
}

// String renders the join as SQL text.
func (j Join) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftRel, j.LeftCol, j.RightRel, j.RightCol)
}

// Touches reports whether the edge is incident to relation rel.
func (j Join) Touches(rel string) bool { return j.LeftRel == rel || j.RightRel == rel }

// Other returns the relation on the opposite side of rel (ok=false if the
// edge does not touch rel).
func (j Join) Other(rel string) (string, bool) {
	switch rel {
	case j.LeftRel:
		return j.RightRel, true
	case j.RightRel:
		return j.LeftRel, true
	default:
		return "", false
	}
}

// Graph is a query graph: a set of relation vertices plus selection and join
// edges. The zero value is not usable; call New.
type Graph struct {
	rels  map[string]struct{}
	sels  map[string]Selection
	joins map[string]Join
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		rels:  make(map[string]struct{}),
		sels:  make(map[string]Selection),
		joins: make(map[string]Join),
	}
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New()
	for r := range g.rels {
		c.rels[r] = struct{}{}
	}
	for k, s := range g.sels {
		c.sels[k] = s
	}
	for k, j := range g.joins {
		c.joins[k] = j
	}
	return c
}

// AddRelation adds a relation vertex (idempotent).
func (g *Graph) AddRelation(rel string) { g.rels[rel] = struct{}{} }

// AddSelection adds a selection edge, implicitly adding its relation vertex.
func (g *Graph) AddSelection(s Selection) {
	g.AddRelation(s.Rel)
	g.sels[s.Key()] = s
}

// AddJoin adds a join edge, implicitly adding both relation vertices.
func (g *Graph) AddJoin(j Join) {
	g.AddRelation(j.LeftRel)
	g.AddRelation(j.RightRel)
	g.joins[j.Key()] = j
}

// RemoveSelection removes a selection edge if present. The relation vertex
// remains (the user removed an annotation, not the table).
func (g *Graph) RemoveSelection(s Selection) { delete(g.sels, s.Key()) }

// RemoveJoin removes a join edge if present.
func (g *Graph) RemoveJoin(j Join) { delete(g.joins, j.Key()) }

// RemoveRelation removes a relation vertex together with every incident edge.
func (g *Graph) RemoveRelation(rel string) {
	delete(g.rels, rel)
	for k, s := range g.sels {
		if s.Rel == rel {
			delete(g.sels, k)
		}
	}
	for k, j := range g.joins {
		if j.Touches(rel) {
			delete(g.joins, k)
		}
	}
}

// HasRelation reports whether rel is a vertex of g.
func (g *Graph) HasRelation(rel string) bool {
	_, ok := g.rels[rel]
	return ok
}

// HasSelection reports whether the exact selection edge is present.
func (g *Graph) HasSelection(s Selection) bool {
	_, ok := g.sels[s.Key()]
	return ok
}

// HasJoin reports whether the join edge is present.
func (g *Graph) HasJoin(j Join) bool {
	_, ok := g.joins[j.Key()]
	return ok
}

// Relations returns the relation vertices in sorted order.
func (g *Graph) Relations() []string {
	out := make([]string, 0, len(g.rels))
	for r := range g.rels {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Selections returns the selection edges sorted by canonical key.
func (g *Graph) Selections() []Selection {
	keys := make([]string, 0, len(g.sels))
	for k := range g.sels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Selection, len(keys))
	for i, k := range keys {
		out[i] = g.sels[k]
	}
	return out
}

// Joins returns the join edges sorted by canonical key.
func (g *Graph) Joins() []Join {
	keys := make([]string, 0, len(g.joins))
	for k := range g.joins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Join, len(keys))
	for i, k := range keys {
		out[i] = g.joins[k]
	}
	return out
}

// SelectionsOn returns the selection edges attached to rel, sorted.
func (g *Graph) SelectionsOn(rel string) []Selection {
	var out []Selection
	for _, s := range g.Selections() {
		if s.Rel == rel {
			out = append(out, s)
		}
	}
	return out
}

// JoinsOn returns the join edges incident to rel, sorted.
func (g *Graph) JoinsOn(rel string) []Join {
	var out []Join
	for _, j := range g.Joins() {
		if j.Touches(rel) {
			out = append(out, j)
		}
	}
	return out
}

// NumRelations, NumSelections, NumJoins report part counts.
func (g *Graph) NumRelations() int { return len(g.rels) }

// NumSelections reports the number of selection edges.
func (g *Graph) NumSelections() int { return len(g.sels) }

// NumJoins reports the number of join edges.
func (g *Graph) NumJoins() int { return len(g.joins) }

// IsEmpty reports whether the graph has no vertices at all.
func (g *Graph) IsEmpty() bool { return len(g.rels) == 0 }

// Contains reports sub ⊆ g over atomic parts: every relation vertex,
// selection edge, and join edge of sub appears in g. This is the ⊆ of the
// paper's cost model (property P1 and view matching both use it).
func (g *Graph) Contains(sub *Graph) bool {
	for r := range sub.rels {
		if !g.HasRelation(r) {
			return false
		}
	}
	for k := range sub.sels {
		if _, ok := g.sels[k]; !ok {
			return false
		}
	}
	for k := range sub.joins {
		if _, ok := g.joins[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether g and o have identical parts.
func (g *Graph) Equal(o *Graph) bool { return g.Contains(o) && o.Contains(g) }

// Union returns a new graph with the parts of both. This is the ∪ of
// property P2.
func (g *Graph) Union(o *Graph) *Graph {
	u := g.Clone()
	for r := range o.rels {
		u.rels[r] = struct{}{}
	}
	for k, s := range o.sels {
		u.sels[k] = s
	}
	for k, j := range o.joins {
		u.joins[k] = j
	}
	return u
}

// Intersect returns a new graph with the parts common to both.
func (g *Graph) Intersect(o *Graph) *Graph {
	x := New()
	for r := range g.rels {
		if o.HasRelation(r) {
			x.rels[r] = struct{}{}
		}
	}
	for k, s := range g.sels {
		if _, ok := o.sels[k]; ok {
			x.sels[k] = s
		}
	}
	for k, j := range g.joins {
		if _, ok := o.joins[k]; ok {
			x.joins[k] = j
		}
	}
	return x
}

// Subtract returns a new graph with g's parts that are not in o. A relation
// vertex survives if it is not a vertex of o, or if any surviving edge still
// touches it.
func (g *Graph) Subtract(o *Graph) *Graph {
	d := New()
	for k, s := range g.sels {
		if _, ok := o.sels[k]; !ok {
			d.AddSelection(s)
		}
	}
	for k, j := range g.joins {
		if _, ok := o.joins[k]; !ok {
			d.AddJoin(j)
		}
	}
	for r := range g.rels {
		if !o.HasRelation(r) {
			d.AddRelation(r)
		}
	}
	return d
}

// IsConnected reports whether the relation vertices form one connected
// component under join edges. Graphs with ≤1 relation are connected.
func (g *Graph) IsConnected() bool {
	if len(g.rels) <= 1 {
		return true
	}
	var start string
	for r := range g.rels {
		start = r
		break
	}
	seen := map[string]bool{start: true}
	frontier := []string{start}
	for len(frontier) > 0 {
		r := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, j := range g.joins {
			if other, ok := j.Other(r); ok && !seen[other] {
				seen[other] = true
				frontier = append(frontier, other)
			}
		}
	}
	return len(seen) == len(g.rels)
}

// Key returns a canonical string identity for the whole graph: equal graphs
// have equal keys. Used for caching, learning, and materialization lookup.
func (g *Graph) Key() string {
	var parts []string
	for r := range g.rels {
		parts = append(parts, "R|"+r)
	}
	for k := range g.sels {
		parts = append(parts, k)
	}
	for k := range g.joins {
		parts = append(parts, k)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// String renders the graph as a WHERE-clause-style description.
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteString("{")
	b.WriteString(strings.Join(g.Relations(), ","))
	var conds []string
	for _, j := range g.Joins() {
		conds = append(conds, j.String())
	}
	for _, s := range g.Selections() {
		conds = append(conds, s.String())
	}
	if len(conds) > 0 {
		b.WriteString(" | ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	b.WriteString("}")
	return b.String()
}

// SelectionSubgraph returns the single-selection sub-query {s.Rel | s}: the
// shape the Speculator materializes for selection manipulations.
func SelectionSubgraph(s Selection) *Graph {
	g := New()
	g.AddSelection(s)
	return g
}

// JoinSubgraph returns the two-way-join sub-query for j within parent:
// both relations, the join edge, and *all selection edges attached to either
// relation in parent* — exactly the enumeration unit of Section 3.5.
func JoinSubgraph(parent *Graph, j Join) *Graph {
	g := New()
	g.AddJoin(j)
	for _, s := range parent.SelectionsOn(j.LeftRel) {
		g.AddSelection(s)
	}
	for _, s := range parent.SelectionsOn(j.RightRel) {
		g.AddSelection(s)
	}
	return g
}
