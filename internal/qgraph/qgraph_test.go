package qgraph

import (
	"testing"
	"testing/quick"

	"specdb/internal/sim"
	"specdb/internal/tuple"
)

func sel(rel, col string, op tuple.CmpOp, c int64) Selection {
	return Selection{Rel: rel, Col: col, Op: op, Const: tuple.NewInt(c)}
}

// figure2Graph builds the paper's Figure 2 example:
// R ⋈a S ⋈b W with R.c>10 and W.d<2000.
func figure2Graph() *Graph {
	g := New()
	g.AddJoin(NewJoin("R", "a", "S", "a"))
	g.AddJoin(NewJoin("S", "b", "W", "b"))
	g.AddSelection(sel("R", "c", tuple.CmpGT, 10))
	g.AddSelection(sel("W", "d", tuple.CmpLT, 2000))
	return g
}

func TestFigure2Shape(t *testing.T) {
	g := figure2Graph()
	if g.NumRelations() != 3 || g.NumJoins() != 2 || g.NumSelections() != 2 {
		t.Fatalf("parts: %d rels, %d joins, %d sels", g.NumRelations(), g.NumJoins(), g.NumSelections())
	}
	if !g.IsConnected() {
		t.Fatal("Figure 2 graph should be connected")
	}
	rels := g.Relations()
	if rels[0] != "R" || rels[1] != "S" || rels[2] != "W" {
		t.Fatalf("relations %v", rels)
	}
}

func TestJoinNormalization(t *testing.T) {
	a := NewJoin("S", "a", "R", "a")
	b := NewJoin("R", "a", "S", "a")
	if a != b {
		t.Fatalf("join not normalized: %+v vs %+v", a, b)
	}
	if a.Key() != b.Key() {
		t.Fatal("normalized joins have different keys")
	}
	g := New()
	g.AddJoin(a)
	if !g.HasJoin(b) {
		t.Fatal("graph misses reversed join")
	}
}

func TestSelfJoinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-join did not panic")
		}
	}()
	NewJoin("R", "a", "R", "b")
}

func TestJoinOtherTouches(t *testing.T) {
	j := NewJoin("R", "a", "S", "b")
	if !j.Touches("R") || !j.Touches("S") || j.Touches("W") {
		t.Fatal("Touches wrong")
	}
	if o, ok := j.Other("R"); !ok || o != "S" {
		t.Fatal("Other(R) wrong")
	}
	if _, ok := j.Other("W"); ok {
		t.Fatal("Other(W) should be false")
	}
}

func TestContainment(t *testing.T) {
	g := figure2Graph()
	// σ(R.c>10) alone is contained.
	sub := SelectionSubgraph(sel("R", "c", tuple.CmpGT, 10))
	if !g.Contains(sub) {
		t.Fatal("selection subgraph not contained")
	}
	// Different constant is NOT contained (exact-part semantics).
	other := SelectionSubgraph(sel("R", "c", tuple.CmpGT, 11))
	if g.Contains(other) {
		t.Fatal("different constant should not be contained")
	}
	// Different operator is NOT contained.
	opv := SelectionSubgraph(sel("R", "c", tuple.CmpGE, 10))
	if g.Contains(opv) {
		t.Fatal("different op should not be contained")
	}
	// The graph contains itself and the empty graph.
	if !g.Contains(g.Clone()) || !g.Contains(New()) {
		t.Fatal("reflexive/empty containment failed")
	}
	// A join not in g.
	if g.Contains(func() *Graph { x := New(); x.AddJoin(NewJoin("R", "z", "W", "z")); return x }()) {
		t.Fatal("foreign join contained")
	}
}

func TestUnionIntersectSubtract(t *testing.T) {
	q1 := SelectionSubgraph(sel("R", "c", tuple.CmpGT, 10)) // σθ(R)
	q2 := New()                                             // R ⋈ S
	q2.AddJoin(NewJoin("R", "a", "S", "a"))
	q3 := q1.Union(q2) // σθ(R) ⋈ S — the Theorem 3.1 example

	if !q3.Contains(q1) || !q3.Contains(q2) {
		t.Fatal("union must contain both operands")
	}
	if q3.NumRelations() != 2 || q3.NumJoins() != 1 || q3.NumSelections() != 1 {
		t.Fatalf("union parts wrong: %v", q3)
	}
	x := q3.Intersect(q1)
	if !x.Equal(q1) {
		t.Fatalf("q3 ∩ q1 = %v, want q1", x)
	}
	d := q3.Subtract(q1)
	if d.HasSelection(sel("R", "c", tuple.CmpGT, 10)) {
		t.Fatal("subtract left the selection")
	}
	if !d.HasJoin(NewJoin("R", "a", "S", "a")) {
		t.Fatal("subtract dropped the join")
	}
}

func TestRemoveRelationCascades(t *testing.T) {
	g := figure2Graph()
	g.RemoveRelation("S")
	if g.HasRelation("S") {
		t.Fatal("S still present")
	}
	if g.NumJoins() != 0 {
		t.Fatalf("joins incident to S not removed: %v", g.Joins())
	}
	if g.NumSelections() != 2 {
		t.Fatal("selections on other relations should survive")
	}
	if g.IsConnected() {
		t.Fatal("R and W are now disconnected")
	}
}

func TestRemoveEdges(t *testing.T) {
	g := figure2Graph()
	g.RemoveSelection(sel("R", "c", tuple.CmpGT, 10))
	if g.NumSelections() != 1 {
		t.Fatal("selection not removed")
	}
	if !g.HasRelation("R") {
		t.Fatal("removing a selection must keep the relation vertex")
	}
	g.RemoveJoin(NewJoin("S", "a", "R", "a")) // reversed orientation
	if g.NumJoins() != 1 {
		t.Fatal("join not removed via reversed orientation")
	}
}

func TestSelectionsOnJoinsOn(t *testing.T) {
	g := figure2Graph()
	if got := g.SelectionsOn("R"); len(got) != 1 || got[0].Col != "c" {
		t.Fatalf("SelectionsOn(R) = %v", got)
	}
	if got := g.SelectionsOn("S"); len(got) != 0 {
		t.Fatalf("SelectionsOn(S) = %v", got)
	}
	if got := g.JoinsOn("S"); len(got) != 2 {
		t.Fatalf("JoinsOn(S) = %v", got)
	}
}

func TestJoinSubgraph(t *testing.T) {
	g := figure2Graph()
	jg := JoinSubgraph(g, NewJoin("R", "a", "S", "a"))
	// Must pull in R's selection but not W's.
	if !jg.HasSelection(sel("R", "c", tuple.CmpGT, 10)) {
		t.Fatal("join subgraph missing attached selection")
	}
	if jg.HasSelection(sel("W", "d", tuple.CmpLT, 2000)) {
		t.Fatal("join subgraph includes unattached selection")
	}
	if jg.NumRelations() != 2 || jg.NumJoins() != 1 {
		t.Fatalf("join subgraph shape: %v", jg)
	}
	if !g.Contains(jg) {
		t.Fatal("join subgraph must be contained in parent")
	}
}

func TestKeyCanonical(t *testing.T) {
	// Same parts added in different orders → same key.
	g1 := figure2Graph()
	g2 := New()
	g2.AddSelection(sel("W", "d", tuple.CmpLT, 2000))
	g2.AddJoin(NewJoin("W", "b", "S", "b"))
	g2.AddSelection(sel("R", "c", tuple.CmpGT, 10))
	g2.AddJoin(NewJoin("S", "a", "R", "a"))
	if g1.Key() != g2.Key() {
		t.Fatalf("canonical keys differ:\n%s\n%s", g1.Key(), g2.Key())
	}
	if !g1.Equal(g2) {
		t.Fatal("Equal disagrees with Key")
	}
	g2.RemoveSelection(sel("R", "c", tuple.CmpGT, 10))
	if g1.Key() == g2.Key() {
		t.Fatal("different graphs share a key")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := figure2Graph()
	c := g.Clone()
	c.RemoveRelation("R")
	if !g.HasRelation("R") || g.NumJoins() != 2 {
		t.Fatal("clone aliases original")
	}
}

func TestConnectivity(t *testing.T) {
	g := New()
	if !g.IsConnected() {
		t.Fatal("empty graph is connected by convention")
	}
	g.AddRelation("A")
	if !g.IsConnected() {
		t.Fatal("single vertex is connected")
	}
	g.AddRelation("B")
	if g.IsConnected() {
		t.Fatal("two isolated vertices are not connected")
	}
	g.AddJoin(NewJoin("A", "x", "B", "x"))
	if !g.IsConnected() {
		t.Fatal("joined vertices are connected")
	}
}

// randomGraph builds a graph from a seed, over a fixed small vocabulary so
// that random pairs often overlap.
func randomGraph(r *sim.Rand) *Graph {
	rels := []string{"R", "S", "T", "U"}
	g := New()
	for _, rel := range rels {
		if r.Float64() < 0.6 {
			g.AddRelation(rel)
		}
	}
	for i := 0; i < len(rels); i++ {
		for k := i + 1; k < len(rels); k++ {
			if r.Float64() < 0.3 {
				g.AddJoin(NewJoin(rels[i], "a", rels[k], "a"))
			}
		}
	}
	for _, rel := range rels {
		if r.Float64() < 0.4 {
			g.AddSelection(sel(rel, "x", tuple.CmpGT, int64(r.Intn(3))))
		}
	}
	return g
}

// Property: the set algebra behaves like a set algebra.
func TestGraphAlgebraProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		a, b := randomGraph(r), randomGraph(r)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		x := a.Intersect(b)
		if !a.Contains(x) || !b.Contains(x) {
			return false
		}
		// Union is commutative; intersect is commutative (by Key).
		if u.Key() != b.Union(a).Key() {
			return false
		}
		if x.Key() != b.Intersect(a).Key() {
			return false
		}
		// a = (a∖b) ∪ (a∩b) over edges; vertices may differ only when a
		// vertex of a∩b also hosts surviving edges, so check containment.
		recomposed := a.Subtract(b).Union(x)
		if !a.Contains(recomposed) {
			return false
		}
		// Contains is transitive through union.
		if !u.Contains(x) {
			return false
		}
		// Key/Equal consistency.
		if (a.Key() == b.Key()) != a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	g := figure2Graph()
	s := g.String()
	for _, want := range []string{"R,S,W", "R.a = S.a", "R.c > 10", "W.d < 2000"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
