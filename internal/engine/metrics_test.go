package engine

import (
	"strings"
	"testing"
)

// TestExecExplainAnalyze runs EXPLAIN ANALYZE through the SQL front door and
// checks the rendered actuals, and that instrumentation leaves the measured
// duration exactly what a bare run of the same query reports.
func TestExecExplainAnalyze(t *testing.T) {
	const query = "SELECT * FROM R, S WHERE R.a = S.a AND R.c < 5"

	bareEng := newTestEngine(t, 200, Config{})
	bare, err := bareEng.Exec(query)
	if err != nil {
		t.Fatal(err)
	}

	eng := newTestEngine(t, 200, Config{})
	res, err := eng.Exec("EXPLAIN ANALYZE " + query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyzed == "" {
		t.Fatal("EXPLAIN ANALYZE returned no rendering")
	}
	if !strings.Contains(res.Analyzed, "(actual rows=") {
		t.Fatalf("rendering lacks actuals:\n%s", res.Analyzed)
	}
	if res.RowCount != bare.RowCount {
		t.Fatalf("analyzed RowCount %d != bare %d", res.RowCount, bare.RowCount)
	}
	// The determinism contract: profiling must not change what the meter
	// charges, so both fresh engines measure the identical simulated duration.
	if res.Duration != bare.Duration {
		t.Fatalf("instrumented duration %v != bare %v", res.Duration, bare.Duration)
	}
	if res.Work != bare.Work {
		t.Fatalf("instrumented work %+v != bare %+v", res.Work, bare.Work)
	}
}

func TestExplainAnalyzeBadQuery(t *testing.T) {
	eng := newTestEngine(t, 20, Config{})
	if _, err := eng.Exec("EXPLAIN ANALYZE SELECT * FROM ghost"); err == nil {
		t.Fatal("EXPLAIN ANALYZE on a missing table should fail")
	}
}

// TestMetricsSnapshot checks the engine-level metric surface: statement
// counters and duration histogram advance, derived gauges reflect catalog and
// pool state, and the pool's mirrored counters stay coherent.
func TestMetricsSnapshot(t *testing.T) {
	eng := newTestEngine(t, 200, Config{})
	if eng.Metrics() == nil || eng.Tracer() == nil {
		t.Fatal("registry or tracer missing")
	}
	if _, err := eng.Exec("CREATE INDEX ON R (a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("SELECT * FROM R WHERE R.a = 7"); err != nil {
		t.Fatal(err)
	}

	snap := eng.MetricsSnapshot()
	if snap.Counters["engine.statements"] < 2 {
		t.Fatalf("engine.statements = %d, want >= 2", snap.Counters["engine.statements"])
	}
	if snap.Counters["engine.queries"] < 1 || snap.Counters["engine.query.rows"] < 1 {
		t.Fatalf("query counters: %d queries, %d rows",
			snap.Counters["engine.queries"], snap.Counters["engine.query.rows"])
	}
	h, ok := snap.Histograms["engine.statement.duration_ns"]
	if !ok || h.Count < 2 || h.Sum <= 0 {
		t.Fatalf("duration histogram: %+v", h)
	}
	if snap.Gauges["btree.indexes"] != 1 {
		t.Fatalf("btree.indexes = %v, want 1", snap.Gauges["btree.indexes"])
	}
	if snap.Gauges["btree.height.max"] < 1 || snap.Gauges["btree.pages"] < 1 {
		t.Fatalf("btree gauges: %+v", snap.Gauges)
	}
	if snap.Gauges["catalog.tables"] != 3 {
		t.Fatalf("catalog.tables = %v, want 3 (R,S,W)", snap.Gauges["catalog.tables"])
	}
	if snap.Gauges["buffer.pool.capacity"] != 256 {
		t.Fatalf("buffer.pool.capacity = %v", snap.Gauges["buffer.pool.capacity"])
	}
	hits, misses, fetches := snap.Counters["buffer.pool.hits"],
		snap.Counters["buffer.pool.misses"], snap.Counters["buffer.pool.fetches"]
	if fetches == 0 || hits+misses != fetches {
		t.Fatalf("pool counters incoherent: hits %d + misses %d != fetches %d", hits, misses, fetches)
	}
}
