package engine

import (
	"strings"
	"testing"

	"specdb/internal/plan"
	"specdb/internal/qgraph"
	"specdb/internal/tuple"
)

// newTestEngine builds an engine with the Figure 2 relations R(a,c), S(a,b),
// W(b,d), loaded with n deterministic rows each and analyzed.
func newTestEngine(t *testing.T, n int, cfg Config) *Engine {
	t.Helper()
	if cfg.BufferPoolPages == 0 {
		cfg.BufferPoolPages = 256
	}
	e := New(cfg)
	mk := func(name string, cols [2]string, gen func(i int) (int64, int64)) {
		schema := tuple.NewSchema(
			tuple.Column{Name: cols[0], Kind: tuple.KindInt},
			tuple.Column{Name: cols[1], Kind: tuple.KindInt},
		)
		if _, err := e.CreateTable(name, schema); err != nil {
			t.Fatal(err)
		}
		rows := make([]tuple.Row, n)
		for i := 0; i < n; i++ {
			a, b := gen(i)
			rows[i] = tuple.Row{tuple.NewInt(a), tuple.NewInt(b)}
		}
		if err := e.InsertRows(name, rows); err != nil {
			t.Fatal(err)
		}
		if err := e.Analyze(name); err != nil {
			t.Fatal(err)
		}
	}
	mk("R", [2]string{"a", "c"}, func(i int) (int64, int64) { return int64(i % 50), int64(i % 23) })
	mk("S", [2]string{"a", "b"}, func(i int) (int64, int64) { return int64(i % 50), int64(i % 31) })
	mk("W", [2]string{"b", "d"}, func(i int) (int64, int64) { return int64(i % 31), int64(i * 37 % 3000) })
	return e
}

func TestExecQuery(t *testing.T) {
	e := newTestEngine(t, 200, Config{})
	res, err := e.Exec("SELECT * FROM R WHERE R.c < 5")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 200; i++ {
		if i%23 < 5 {
			want++
		}
	}
	if int(res.RowCount) != want || len(res.Rows) != want {
		t.Fatalf("RowCount=%d rows=%d, want %d", res.RowCount, len(res.Rows), want)
	}
	if res.Duration <= 0 {
		t.Fatalf("duration %v", res.Duration)
	}
	if res.Work.Tuples == 0 {
		t.Fatal("no tuples charged")
	}
}

func TestExecExplain(t *testing.T) {
	e := newTestEngine(t, 50, Config{})
	res, err := e.Exec("EXPLAIN SELECT * FROM R, S WHERE R.a = S.a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Rows != nil {
		t.Fatal("EXPLAIN should plan without executing")
	}
}

func TestExecParseError(t *testing.T) {
	e := newTestEngine(t, 10, Config{})
	if _, err := e.Exec("SELEKT"); err == nil {
		t.Fatal("bad SQL should fail")
	}
	if _, err := e.Exec("SELECT * FROM nope"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestMaterializeViaSQLInto(t *testing.T) {
	e := newTestEngine(t, 200, Config{})
	res, err := e.Exec("SELECT * FROM R WHERE R.c > 10 INTO TABLE young")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount == 0 {
		t.Fatal("nothing materialized")
	}
	vt, err := e.Catalog.Table("young")
	if err != nil {
		t.Fatal(err)
	}
	if vt.RowCount() != res.RowCount {
		t.Fatalf("stored %d rows, result says %d", vt.RowCount(), res.RowCount)
	}
	// Stored columns are qualified.
	if vt.Schema.Ordinal("R.c") < 0 {
		t.Fatalf("view schema %v", vt.Schema)
	}
	// View registered (non-forced for SQL INTO).
	v := e.Catalog.View("young")
	if v == nil || v.Forced {
		t.Fatalf("view registration %+v", v)
	}
	// Stats available.
	if vt.ColumnStats("R.c") == nil || vt.ColumnStats("R.c").Count != res.RowCount {
		t.Fatal("view not analyzed")
	}
}

func TestMaterializeGraphForcedRewrite(t *testing.T) {
	e := newTestEngine(t, 400, Config{})
	g := qgraph.SelectionSubgraph(qgraph.Selection{
		Rel: "R", Col: "c", Op: tuple.CmpGT, Const: tuple.NewInt(10),
	})
	mres, err := e.Materialize("spec_1", g, true)
	if err != nil {
		t.Fatal(err)
	}
	if mres.RowCount == 0 || mres.Duration <= 0 {
		t.Fatalf("materialization result %+v", mres)
	}

	// The final query containing the subgraph must be rewritten.
	res, err := e.Exec("SELECT * FROM R WHERE R.c > 10")
	if err != nil {
		t.Fatal(err)
	}
	planText := planString(res)
	if !strings.Contains(planText, "spec_1") {
		t.Fatalf("forced rewrite missing:\n%s", planText)
	}
	want := 0
	for i := 0; i < 400; i++ {
		if i%23 > 10 {
			want++
		}
	}
	if int(res.RowCount) != want {
		t.Fatalf("rewritten answer %d rows, want %d", res.RowCount, want)
	}

	// Rewritten execution must beat executing from scratch on a cold pool:
	// the materialized table is a fraction of R.
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	rewritten, err := e.Exec("SELECT * FROM R WHERE R.c > 10")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DropTable("spec_1"); err != nil {
		t.Fatal(err)
	}
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	scratch, err := e.Exec("SELECT * FROM R WHERE R.c > 10")
	if err != nil {
		t.Fatal(err)
	}
	if rewritten.Duration >= scratch.Duration {
		t.Fatalf("rewrite (%v) not faster than scratch (%v)", rewritten.Duration, scratch.Duration)
	}
}

func TestMaterializeDuplicateName(t *testing.T) {
	e := newTestEngine(t, 50, Config{})
	g := qgraph.SelectionSubgraph(qgraph.Selection{
		Rel: "R", Col: "c", Op: tuple.CmpGT, Const: tuple.NewInt(5),
	})
	if _, err := e.Materialize("m", g, true); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Materialize("m", g, true); err == nil {
		t.Fatal("duplicate materialization name should fail")
	}
}

func TestCreateIndexAndUse(t *testing.T) {
	e := newTestEngine(t, 30000, Config{})
	res, err := e.Exec("CREATE INDEX ON W(d)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 30000 || res.Duration <= 0 {
		t.Fatalf("index build result %+v", res)
	}
	// W.d = i*37 %% 3000 has ≈3000 distinct values: an equality matches ≈10
	// of 30000 rows, well under the page count, so the index wins.
	q, err := e.Exec("EXPLAIN SELECT * FROM W WHERE W.d = 777")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planString(q), "IndexScan") {
		t.Fatalf("index unused:\n%s", planString(q))
	}
	if _, err := e.Exec("CREATE INDEX ON W(d)"); err == nil {
		t.Fatal("duplicate index should fail")
	}
	if err := e.DropIndex("W", "d"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("W", "d"); err == nil {
		t.Fatal("double index drop should fail")
	}
}

func TestCreateHistogramImprovesEstimates(t *testing.T) {
	e := newTestEngine(t, 2000, Config{})
	// Without a histogram the uniform assumption misestimates the skewed
	// d column; with one, estimates change.
	before, err := e.PlanGraph(qgraph.SelectionSubgraph(qgraph.Selection{
		Rel: "W", Col: "d", Op: tuple.CmpLT, Const: tuple.NewInt(100),
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec("CREATE HISTOGRAM ON W(d)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 2000 {
		t.Fatalf("histogram scanned %d rows", res.RowCount)
	}
	wt, _ := e.Catalog.Table("W")
	if wt.ColumnStats("d").Hist() == nil {
		t.Fatal("histogram not attached")
	}
	after, err := e.PlanGraph(qgraph.SelectionSubgraph(qgraph.Selection{
		Rel: "W", Col: "d", Op: tuple.CmpLT, Const: tuple.NewInt(100),
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Both must be valid plans; the row estimates should differ (histogram
	// vs interpolation can coincide only by accident on this data).
	if before.Rows() == after.Rows() {
		t.Logf("estimates identical (%v); acceptable but unexpected", before.Rows())
	}
	if err := e.DropHistogram("W", "d"); err != nil {
		t.Fatal(err)
	}
	if wt.ColumnStats("d").Hist() != nil {
		t.Fatal("histogram not dropped")
	}
}

func TestStageWarmsPool(t *testing.T) {
	e := newTestEngine(t, 2000, Config{BufferPoolPages: 512})
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Stage("R")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount == 0 || res.Work.PageReads == 0 {
		t.Fatalf("staging did nothing: %+v", res)
	}
	staged := e.Pool.StagedCount()
	if staged == 0 {
		t.Fatal("no pages staged")
	}
	// A query over R now reads fewer pages from disk.
	q1, err := e.Exec("SELECT * FROM R WHERE R.c < 3")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Unstage("R"); err != nil {
		t.Fatal(err)
	}
	if e.Pool.StagedCount() != 0 {
		t.Fatal("unstage incomplete")
	}
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	q2, err := e.Exec("SELECT * FROM R WHERE R.c < 3")
	if err != nil {
		t.Fatal(err)
	}
	if q1.Work.PageReads >= q2.Work.PageReads {
		t.Fatalf("staged query read %d pages, cold read %d", q1.Work.PageReads, q2.Work.PageReads)
	}
}

func TestContentionModel(t *testing.T) {
	e := newTestEngine(t, 500, Config{ContentionFactor: 0.5})
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	idle, err := e.Exec("SELECT * FROM R")
	if err != nil {
		t.Fatal(err)
	}
	e.BeginJob()
	e.BeginJob()
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	busy, err := e.Exec("SELECT * FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if busy.Work != idle.Work {
		t.Fatalf("work differs between runs: %+v vs %+v", busy.Work, idle.Work)
	}
	// Same work, but duration scaled by (1 + 0.5×2) = 2×.
	ratio := float64(busy.Duration) / float64(idle.Duration)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("contention ratio %.2f, want 2", ratio)
	}
}

func TestDropTableUnknown(t *testing.T) {
	e := newTestEngine(t, 10, Config{})
	if err := e.DropTable("ghost"); err == nil {
		t.Fatal("dropping unknown table should fail")
	}
}

func TestFreshNameUnique(t *testing.T) {
	e := newTestEngine(t, 10, Config{})
	a, b := e.FreshName("spec"), e.FreshName("spec")
	if a == b {
		t.Fatalf("FreshName repeated %q", a)
	}
}

func TestColdStartClearsPool(t *testing.T) {
	e := newTestEngine(t, 500, Config{})
	if _, err := e.Exec("SELECT * FROM R"); err != nil {
		t.Fatal(err)
	}
	warm, err := e.Exec("SELECT * FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	cold, err := e.Exec("SELECT * FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Work.PageReads <= warm.Work.PageReads {
		t.Fatalf("cold reads %d not above warm reads %d", cold.Work.PageReads, warm.Work.PageReads)
	}
}

func TestTotalDataPages(t *testing.T) {
	e := newTestEngine(t, 500, Config{})
	if e.TotalDataPages() == 0 {
		t.Fatal("no data pages counted")
	}
}

// planString renders a result's plan.
func planString(r *Result) string {
	if r.Plan == nil {
		return "<no plan>"
	}
	return plan.Explain(r.Plan)
}

func TestStageBudgetIsGlobal(t *testing.T) {
	// Staging several tables must never pin more than half the pool —
	// otherwise query execution starves for frames (regression test for the
	// A1 ablation failure).
	e := newTestEngine(t, 30000, Config{BufferPoolPages: 16})
	for _, table := range []string{"R", "S", "W"} {
		if _, err := e.Stage(table); err != nil {
			t.Fatal(err)
		}
	}
	if staged := e.Pool.StagedCount(); staged > 8 {
		t.Fatalf("%d pages staged with a 16-frame pool", staged)
	}
	// Queries must still run.
	if _, err := e.Exec("SELECT * FROM R, S WHERE R.a = S.a"); err != nil {
		t.Fatalf("query starved after staging: %v", err)
	}
}
