package engine

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"specdb/internal/fault"
	"specdb/internal/tuple"
)

// The crash-at-any-write recovery matrix (DESIGN.md §12): run a deterministic
// trace of mutating statements against a durable engine, then re-run it with
// a process kill injected at the c-th low-level file write — sweeping c across
// every write the uncrashed reference performs, alternating clean kills with
// torn final pages. After each crash the database is reopened (recovery
// replays the WAL to the last commit), the trace is resumed from the recovered
// statement sequence number, and the result must be indistinguishable from the
// reference: same catalog shape, same statistics, and identical answers to
// every probe query.

// crashTraceOp is one mutating statement; exactly one durable commit each, so
// Engine.AppliedSeq is the trace resume point.
type crashTraceOp struct {
	label string
	run   func(e *Engine) error
}

func intSchema(a, b string) *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: a, Kind: tuple.KindInt},
		tuple.Column{Name: b, Kind: tuple.KindInt},
	)
}

func intRows(n int, gen func(i int) (int64, int64)) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		a, b := gen(i)
		rows[i] = tuple.Row{tuple.NewInt(a), tuple.NewInt(b)}
	}
	return rows
}

// crashTrace is the deterministic statement trace. It exercises every durable
// statement kind: table creation, bulk load, analyze, index and histogram
// builds and drops, SQL materialization (which also registers a view), and
// table drops.
func crashTrace() []crashTraceOp {
	return []crashTraceOp{
		{"create R", func(e *Engine) error {
			_, err := e.CreateTable("R", intSchema("a", "c"))
			return err
		}},
		{"load R", func(e *Engine) error {
			return e.InsertRows("R", intRows(120, func(i int) (int64, int64) {
				return int64(i % 40), int64(i % 17)
			}))
		}},
		{"analyze R", func(e *Engine) error { return e.Analyze("R") }},
		{"create S", func(e *Engine) error {
			_, err := e.CreateTable("S", intSchema("a", "b"))
			return err
		}},
		{"load S", func(e *Engine) error {
			return e.InsertRows("S", intRows(90, func(i int) (int64, int64) {
				return int64(i % 40), int64(i % 13)
			}))
		}},
		{"analyze S", func(e *Engine) error { return e.Analyze("S") }},
		{"index R.a", func(e *Engine) error { _, err := e.CreateIndex("R", "a"); return err }},
		{"hist S.b", func(e *Engine) error { _, err := e.CreateHistogram("S", "b"); return err }},
		{"materialize smallS", func(e *Engine) error {
			_, err := e.Exec("SELECT * FROM S WHERE S.b < 6 INTO TABLE smallS")
			return err
		}},
		{"analyze smallS", func(e *Engine) error { return e.Analyze("smallS") }},
		{"index S.a", func(e *Engine) error { _, err := e.CreateIndex("S", "a"); return err }},
		{"drop index R.a", func(e *Engine) error { return e.DropIndex("R", "a") }},
		{"materialize rs", func(e *Engine) error {
			_, err := e.Exec("SELECT * FROM R, S WHERE R.a = S.a AND R.c < 9 INTO TABLE rs")
			return err
		}},
		{"drop smallS", func(e *Engine) error { return e.DropTable("smallS") }},
		{"hist R.c", func(e *Engine) error { _, err := e.CreateHistogram("R", "c"); return err }},
	}
}

// crashProbes are the queries the recovered database must answer identically.
// They only reference tables alive at the end of the full trace.
var crashProbes = []string{
	"SELECT * FROM R WHERE R.c < 8",
	"SELECT * FROM S WHERE S.b > 3",
	"SELECT * FROM R, S WHERE R.a = S.a AND S.b < 4",
	"SELECT * FROM rs",
}

func durableCrashConfig(path string, crash *fault.Crash, shards int) Config {
	return Config{
		BufferPoolPages: 64,
		// The matrix sweeps shards=1 and shards=4: eviction (and therefore
		// checkpoint flush) order depends on the shard layout, so recovery
		// must be exercised against both write landscapes.
		PoolShards: shards,
		Storage: StorageConfig{
			Path: path,
			// Small threshold so the sweep also crosses checkpoint writes
			// (data-page flushes, temp-WAL build, atomic rename).
			CheckpointBytes: 8 << 10,
			Crash:           crash,
		},
	}
}

// crashFingerprint renders everything observable that must survive recovery:
// catalog shape (tables, rows, indexes, stats presence, views) and the full
// result rows of every probe query, in execution order.
func crashFingerprint(e *Engine) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "applied_seq=%d\n", e.AppliedSeq())
	for _, name := range e.Catalog.TableNames() {
		t, err := e.Catalog.Table(name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "table %s rows=%d pages=%d", name, t.Heap.NumRows(), len(t.Heap.PageIDs()))
		for _, idx := range t.IndexList() {
			fmt.Fprintf(&b, " idx=%s(h=%d,n=%d)", idx.Column, idx.Tree.Height(), idx.Tree.Len())
		}
		for _, c := range t.Schema.Columns {
			if cs := t.ColumnStats(c.Name); cs != nil {
				fmt.Fprintf(&b, " stats=%s(n=%d,d=%d,hist=%v)", c.Name, cs.Count, cs.Distinct, cs.Hist() != nil)
			}
		}
		b.WriteByte('\n')
	}
	for _, v := range e.Catalog.Views() {
		fmt.Fprintf(&b, "view %s forced=%v rels=%v\n", v.Name, v.Forced, v.Graph.Relations())
	}
	for _, q := range crashProbes {
		res, err := e.Exec(q)
		if err != nil {
			return "", fmt.Errorf("probe %q: %w", q, err)
		}
		fmt.Fprintf(&b, "probe %q rows=%d\n", q, res.RowCount)
		for _, row := range res.Rows {
			for _, v := range row {
				fmt.Fprintf(&b, " %d:%d:%g:%q", v.Kind, v.I, v.F, v.S)
			}
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

// runTrace applies ops until one fails (the injected crash surfacing) and
// reports how many succeeded.
func runTrace(e *Engine, ops []crashTraceOp) int {
	for i, op := range ops {
		if err := op.run(e); err != nil {
			return i
		}
	}
	return len(ops)
}

func TestCrashMatrixRecoversIdentically(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			crashMatrixSweep(t, shards)
		})
	}
}

// crashMatrixSweep runs the full crash-at-any-write sweep against a pool with
// the given shard count. The reference (and its write count, the sweep
// domain) is computed per shard layout: eviction order differs across
// layouts, so the checkpoint write landscape does too.
func crashMatrixSweep(t *testing.T, shards int) {
	dir := t.TempDir()
	ops := crashTrace()

	// Reference: the uncrashed run. Its fingerprint is the ground truth and
	// its write count is the sweep domain.
	ref, err := Open(durableCrashConfig(filepath.Join(dir, "ref.pages"), nil, shards))
	if err != nil {
		t.Fatal(err)
	}
	if n := runTrace(ref, ops); n != len(ops) {
		t.Fatalf("reference trace stopped at op %d (%s)", n, ops[n].label)
	}
	want, err := crashFingerprint(ref)
	if err != nil {
		t.Fatal(err)
	}
	totalWrites := ref.FileDisk().FileWrites()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if totalWrites < 20 {
		t.Fatalf("reference performed only %d file writes; trace too small for a meaningful sweep", totalWrites)
	}

	// Sweep: crash at every k-th write, k sized to ~40 crash points so the
	// matrix stays fast under -race while still crossing every write class
	// (superblock, WAL header, record appends, checkpoint flushes, renames).
	step := totalWrites / 40
	if step < 1 {
		step = 1
	}
	point := 0
	for c := int64(1); c <= totalWrites; c += step {
		c := c
		torn := point%2 == 1 // alternate clean kill / torn final page
		point++
		t.Run(fmt.Sprintf("crash_at_write_%d_torn_%v", c, torn), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("crash_%d.pages", c))
			crash := fault.NewCrash(c, torn)
			eng, err := Open(durableCrashConfig(path, crash, shards))
			if err == nil {
				runTrace(eng, ops) // stops when the crash surfaces
				_ = eng.Close()    // dead backend; errors expected
			}
			if !crash.Dead() && err == nil {
				t.Fatalf("crash at write %d never fired (ran %d writes)", c, crash.Writes())
			}

			// Reopen without the gate: recovery must land on the last commit.
			re, err := Open(durableCrashConfig(path, nil, shards))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer func() {
				if err := re.Close(); err != nil {
					t.Errorf("close recovered engine: %v", err)
				}
			}()
			seq := re.AppliedSeq()
			if seq < 0 || seq > int64(len(ops)) {
				t.Fatalf("recovered applied_seq %d out of range [0,%d]", seq, len(ops))
			}
			// Resume the trace from the recovered statement sequence number.
			for i := int(seq); i < len(ops); i++ {
				if err := ops[i].run(re); err != nil {
					t.Fatalf("resume op %d (%s): %v", i, ops[i].label, err)
				}
			}
			got, err := crashFingerprint(re)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("recovered database diverges from uncrashed reference\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
	if point < 10 {
		t.Fatalf("only %d crash points swept", point)
	}
}

// TestCrashMatrixDoubleCrash re-crashes during recovery's own writes (the
// recovery checkpoint and seal commit are themselves gated writes on a second
// open), then verifies the third, clean open still recovers the same state.
func TestCrashMatrixDoubleCrash(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			crashMatrixDoubleCrash(t, shards)
		})
	}
}

func crashMatrixDoubleCrash(t *testing.T, shards int) {
	dir := t.TempDir()
	ops := crashTrace()

	ref, err := Open(durableCrashConfig(filepath.Join(dir, "ref.pages"), nil, shards))
	if err != nil {
		t.Fatal(err)
	}
	runTrace(ref, ops)
	want, err := crashFingerprint(ref)
	if err != nil {
		t.Fatal(err)
	}
	totalWrites := ref.FileDisk().FileWrites()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	for _, frac := range []int64{3, 2} {
		frac := frac
		t.Run(fmt.Sprintf("first_crash_at_1_%d", frac), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("double_%d.pages", frac))
			// First crash mid-trace.
			crash := fault.NewCrash(totalWrites/frac, frac == 3)
			if eng, err := Open(durableCrashConfig(path, crash, shards)); err == nil {
				runTrace(eng, ops)
				_ = eng.Close()
			}
			// Second crash: early in the next open, hitting recovery's own
			// checkpoint/seal writes.
			crash2 := fault.NewCrash(5, frac == 2)
			if eng, err := Open(durableCrashConfig(path, crash2, shards)); err == nil {
				runTrace(eng, ops)
				_ = eng.Close()
			}
			// Third open is clean and must fully recover; resume and compare.
			re, err := Open(durableCrashConfig(path, nil, shards))
			if err != nil {
				t.Fatalf("final recovery open: %v", err)
			}
			defer func() {
				if err := re.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			for i := re.AppliedSeq(); i < int64(len(ops)); i++ {
				if err := ops[i].run(re); err != nil {
					t.Fatalf("resume op %d (%s): %v", i, ops[i].label, err)
				}
			}
			got, err := crashFingerprint(re)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("double-crash recovery diverges\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}
