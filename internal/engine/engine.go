// Package engine is the DBMS facade: it owns the disk, buffer pool, and
// catalog, executes SQL statements and bound query graphs through the
// optimizer and executor, and exposes every operation the speculation
// subsystem issues as a manipulation — materialization, index creation,
// histogram creation, and data staging.
//
// Every operation returns its simulated duration, derived from the work it
// actually performed (buffer-pool misses, write-backs, tuples processed).
// A configurable contention model scales durations by concurrent load for
// the multi-user experiments (Section 6.3 of the paper).
package engine

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"specdb/internal/btree"
	"specdb/internal/buffer"
	"specdb/internal/catalog"
	"specdb/internal/exec"
	"specdb/internal/fault"
	"specdb/internal/obs"
	"specdb/internal/plan"
	"specdb/internal/qgraph"
	"specdb/internal/sim"
	"specdb/internal/sql"
	"specdb/internal/stats"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

// Config sizes a fresh engine.
type Config struct {
	// PageSize in bytes; 0 means storage.DefaultPageSize.
	PageSize int
	// BufferPoolPages is the frame count of the buffer pool.
	BufferPoolPages int
	// PoolShards is the number of lock-striped buffer-pool shards. 0 or 1
	// means a single shard (byte-identical to the historical single-mutex
	// pool); higher values reduce lock contention for concurrent sessions.
	PoolShards int
	// Rates converts work counters to simulated time; zero value means
	// sim.DefaultRates().
	Rates sim.CostRates
	// UseViews lets the optimizer consider non-forced materialized views
	// (query-materialization semantics). Forced views always apply.
	UseViews bool
	// ContentionFactor scales statement durations by
	// (1 + ContentionFactor × ActiveJobs); 0 disables the load model.
	ContentionFactor float64
	// HistogramBuckets used by CreateHistogram; 0 means 20.
	HistogramBuckets int
	// WorkMemBytes is the per-join memory budget before hash joins spill
	// to disk (charged as page I/O). 0 defaults to a quarter of the buffer
	// pool, the classic rule of thumb for the era's work-area sizing.
	WorkMemBytes int64
	// Fault configures deterministic fault injection (DESIGN.md §8). The
	// zero value injects nothing and leaves the engine byte-identical to an
	// uninstrumented one.
	Fault fault.Config
	// Storage selects the durable page-file backend (DESIGN.md §12). The
	// zero value keeps the in-memory disk and byte-identical behavior;
	// engines with Storage.Path set must be constructed via Open, not New.
	Storage StorageConfig
}

// Result reports one executed statement.
type Result struct {
	// Rows holds query output (nil for DDL and materializations).
	Rows []tuple.Row
	// Schema describes Rows.
	Schema *tuple.Schema
	// RowCount is len(Rows) for queries, or rows materialized/indexed.
	RowCount int64
	// Work is the raw work performed.
	Work sim.Work
	// Duration is the simulated elapsed time, after the contention model.
	Duration sim.Duration
	// Plan is the physical plan, when one was produced.
	Plan plan.Node
	// Analyzed is the rendered EXPLAIN ANALYZE tree (per-node actuals);
	// set only for EXPLAIN ANALYZE statements.
	Analyzed string
}

// Engine is the database server. It is safe for concurrent sessions: a
// statement mutex serializes measured statements (keeping per-statement meter
// accounting exact), while planning (PlanGraph/Explain) runs lock-free at
// this level and relies on the fine-grained locks inside the catalog, buffer
// pool, B-trees, and heap files. Simulated concurrency — the effect of other
// in-flight jobs on a statement's duration — is modeled by the contention
// factor over the registered-job count, not by physical overlap.
type Engine struct {
	Disk    storage.Disk
	Pool    *buffer.Pool
	Catalog *catalog.Catalog

	cfg      Config
	meter    *sim.Meter
	useViews atomic.Bool

	// injector drives deterministic fault injection (nil = fault-free).
	injector *fault.Injector

	// Observability (never charges the meter; see internal/obs).
	metrics      *obs.Registry
	tracer       *obs.Tracer
	panicLog     *obs.PanicLog
	obsStmts     *obs.Counter
	obsQueries   *obs.Counter
	obsQueryRows *obs.Counter
	obsStmtDur   *obs.Histogram
	obsPanics    *obs.Counter
	obsReplans   *obs.Counter

	// stmtMu serializes measured statements so each statement's meter delta
	// is exactly its own work.
	stmtMu sync.Mutex

	// jobsMu guards the registry of logically in-flight jobs (speculative
	// manipulations, other users' queries) that the contention model counts.
	jobsMu sync.Mutex
	jobs   map[int64]struct{}
	jobSeq int64

	seqMu sync.Mutex
	seq   int64

	// versMu guards dataVersions: a monotonic per-table write counter the
	// answer cache uses for invalidation (DESIGN.md §14). Every table-mutating
	// statement bumps its table's version; a cached answer captures the
	// versions of the relations it read and is served only while all of them
	// still match. Versions never feed back into planning or measurement.
	versMu       sync.Mutex
	dataVersions map[string]uint64

	// Durable-mode state (see durable.go); all nil/zero on in-memory
	// engines, whose behavior stays byte-identical to history.
	fileDisk           *storage.FileDisk
	durMu              sync.Mutex
	appliedSeq         int64
	lastProfile        []byte
	profileSrc         func() ([]byte, error)
	recoveredProfile   []byte
	recoveredOrphans   int
	obsCommits         *obs.Counter
	obsCheckpointPages *obs.Counter
}

// New constructs an empty in-memory engine. Use Open for a durable one.
func New(cfg Config) *Engine { return build(cfg, nil) }

// build assembles an engine over base (nil means a fresh in-memory
// DiskManager). It is shared by New and the durable Open path.
func build(cfg Config, base storage.Disk) *Engine {
	if cfg.BufferPoolPages < 2 {
		cfg.BufferPoolPages = 64
	}
	if cfg.Rates == (sim.CostRates{}) {
		cfg.Rates = sim.DefaultRates()
	}
	if cfg.HistogramBuckets == 0 {
		cfg.HistogramBuckets = 20
	}
	inj := fault.NewInjector(cfg.Fault) // nil when cfg.Fault injects nothing
	if base == nil {
		base = storage.NewDiskManager(cfg.PageSize)
	}
	disk := fault.WrapDisk(base, inj)
	meter := sim.NewMeter()
	if cfg.PoolShards < 1 {
		cfg.PoolShards = 1
	}
	pool := buffer.NewShardedPool(disk, cfg.BufferPoolPages, cfg.PoolShards, meter)
	pool.SetFaultInjector(inj)
	if cfg.WorkMemBytes == 0 {
		cfg.WorkMemBytes = int64(cfg.BufferPoolPages) * int64(disk.PageSize()) / 4
	}
	e := &Engine{
		Disk:         disk,
		Pool:         pool,
		Catalog:      catalog.New(pool),
		cfg:          cfg,
		meter:        meter,
		injector:     inj,
		jobs:         make(map[int64]struct{}),
		dataVersions: make(map[string]uint64),
		metrics:      obs.NewRegistry(),
		tracer:       obs.NewTracer(0),
		panicLog:     obs.NewPanicLog(0),
	}
	pool.AttachMetrics(e.metrics)
	inj.AttachMetrics(e.metrics)
	e.obsStmts = e.metrics.Counter("engine.statements")
	e.obsQueries = e.metrics.Counter("engine.queries")
	e.obsQueryRows = e.metrics.Counter("engine.query.rows")
	e.obsStmtDur = e.metrics.Histogram("engine.statement.duration_ns", statementDurationBounds)
	e.obsPanics = e.metrics.Counter("recovered_panics")
	e.obsReplans = e.metrics.Counter("engine.replans")
	e.useViews.Store(cfg.UseViews)
	return e
}

// FaultInjector exposes the engine's injector (nil on fault-free engines).
func (e *Engine) FaultInjector() *fault.Injector { return e.injector }

// PanicLog exposes the recovered-panic ring for diagnostics and tests.
func (e *Engine) PanicLog() *obs.PanicLog { return e.panicLog }

// RecordPanic converts a recovered panic value into an error, counting it
// under the recovered_panics metric and capturing the stack. Sessions call
// it from their own recovery boundaries; the engine's statement entry points
// use recoverTo.
func (e *Engine) RecordPanic(op string, v any) error {
	e.panicLog.Record(op, v, debug.Stack())
	e.obsPanics.Inc()
	return fmt.Errorf("engine: internal error in %s: %v", op, v)
}

// recoverTo is deferred at every statement entry point: an internal bug
// (panic) becomes a returned error with its stack preserved in the panic
// log, instead of killing every session sharing the engine.
func (e *Engine) recoverTo(op string, err *error) {
	if r := recover(); r != nil {
		*err = e.RecordPanic(op, r)
	}
}

// Rates reports the engine's cost rates.
func (e *Engine) Rates() sim.CostRates { return e.cfg.Rates }

// UseViews reports whether optional views are considered.
func (e *Engine) UseViews() bool { return e.useViews.Load() }

// SetUseViews toggles optional-view usage (Figure 6 modes).
func (e *Engine) SetUseViews(v bool) { e.useViews.Store(v) }

// BeginJob registers a logically in-flight job with the contention model and
// returns a handle for EndJob. Speculators register their outstanding
// manipulations; the multi-user harness registers other users' running
// queries.
func (e *Engine) BeginJob() int64 {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	e.jobSeq++
	e.jobs[e.jobSeq] = struct{}{}
	return e.jobSeq
}

// EndJob deregisters a job. Ending an already-ended job is a no-op, so
// completion and cancellation paths need not coordinate.
func (e *Engine) EndJob(id int64) {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	delete(e.jobs, id)
}

// ActiveJobs reports the number of registered in-flight jobs.
func (e *Engine) ActiveJobs() int {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	return len(e.jobs)
}

// bumpDataVersion advances name's data version after a table-mutating
// statement, invalidating any cached answer that read the table.
func (e *Engine) bumpDataVersion(name string) {
	e.versMu.Lock()
	defer e.versMu.Unlock()
	e.dataVersions[name]++
}

// DataVersion reports name's current data version (0 for a never-written
// table). The answer cache compares captured versions against this.
func (e *Engine) DataVersion(name string) uint64 {
	e.versMu.Lock()
	defer e.versMu.Unlock()
	return e.dataVersions[name]
}

// DataVersions snapshots the data versions of the named relations, for an
// answer-cache entry capturing what it read.
func (e *Engine) DataVersions(rels []string) map[string]uint64 {
	e.versMu.Lock()
	defer e.versMu.Unlock()
	out := make(map[string]uint64, len(rels))
	for _, r := range rels {
		out[r] = e.dataVersions[r]
	}
	return out
}

// planOptions builds the optimizer options.
func (e *Engine) planOptions() plan.Options {
	return plan.Options{Rates: e.cfg.Rates, UseViews: e.useViews.Load(), WorkMemBytes: e.cfg.WorkMemBytes}
}

// execContext builds an executor context with the engine's work-memory
// budget.
func (e *Engine) execContext() *exec.Context {
	return &exec.Context{Meter: e.meter, WorkMemBytes: e.cfg.WorkMemBytes}
}

// measure runs fn and converts the work it performed into a duration under
// the contention model. Callers must hold stmtMu so the meter delta contains
// only fn's own work.
func (e *Engine) measure(fn func() error) (sim.Work, sim.Duration, error) {
	before := e.meter.Snapshot()
	err := fn()
	work := e.meter.Since(before)
	d := work.Cost(e.cfg.Rates)
	if n := e.ActiveJobs(); e.cfg.ContentionFactor > 0 && n > 0 {
		d = sim.Duration(float64(d) * (1 + e.cfg.ContentionFactor*float64(n)))
	}
	if err == nil {
		e.obsStmts.Inc()
		e.obsStmtDur.Observe(int64(d))
	}
	return work, d, err
}

// recoverResult is recoverTo for the (*Result, error) entry points: a
// recovered panic also drops the partial result.
func (e *Engine) recoverResult(op string, res **Result, err *error) {
	if r := recover(); r != nil {
		*res = nil
		*err = e.RecordPanic(op, r)
	}
}

// Exec parses and executes one SQL statement.
func (e *Engine) Exec(src string) (res *Result, err error) {
	defer e.recoverResult("Exec", &res, &err)
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		q, err := plan.Bind(e.Catalog, s)
		if err != nil {
			return nil, err
		}
		if s.Into != "" {
			return e.materializeQuery(s.Into, q, q.Graph, false)
		}
		return e.RunQuery(q)
	case *sql.ExplainStmt:
		q, err := plan.Bind(e.Catalog, s.Query)
		if err != nil {
			return nil, err
		}
		if s.Analyze {
			return e.ExplainAnalyze(q)
		}
		node, err := plan.Optimize(e.Catalog, q, e.planOptions())
		if err != nil {
			return nil, err
		}
		return &Result{Plan: node, Schema: node.Schema()}, nil
	case *sql.CreateIndexStmt:
		return e.CreateIndex(s.Table, s.Column)
	case *sql.CreateHistogramStmt:
		return e.CreateHistogram(s.Table, s.Column)
	case *sql.DropTableStmt:
		if err := e.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// RunQuery optimizes and executes a bound query, returning its rows. The
// statement lock is held across optimization AND execution, so a concurrent
// DropTable cannot invalidate the chosen plan before it runs.
//
// Graceful degradation (DESIGN.md §8): if execution fails and the chosen plan
// read any derived object — a materialized view's backing table or an index —
// the query is transparently replanned against base tables with sequential
// access only and retried once. Speculative objects are an accelerator, never
// a correctness dependency, so a corrupted or vanished view must not fail the
// user's query. The original error surfaces only if the degraded plan fails
// too (or none of the plan was derived).
func (e *Engine) RunQuery(q *plan.Query) (res *Result, err error) {
	defer e.recoverResult("RunQuery", &res, &err)
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	node, err := plan.Optimize(e.Catalog, q, e.planOptions())
	if err != nil {
		return nil, err
	}
	res, err = e.runPlanLocked(node)
	if err == nil {
		return res, nil
	}
	if !e.planReadsDerived(node) {
		return nil, err
	}
	opts := e.planOptions()
	opts.AvoidViews, opts.AvoidIndexes = true, true
	degraded, replanErr := plan.Optimize(e.Catalog, q, opts)
	if replanErr != nil {
		return nil, err // surface the original failure
	}
	e.obsReplans.Inc()
	res, replanErr = e.runPlanLocked(degraded)
	if replanErr != nil {
		return nil, err // surface the original failure
	}
	return res, nil
}

// runPlanLocked executes one physical plan under the statement lock,
// measuring its work.
func (e *Engine) runPlanLocked(node plan.Node) (*Result, error) {
	res := &Result{Plan: node, Schema: node.Schema()}
	work, d, err := e.measure(func() error {
		it, err := node.Build(e.execContext())
		if err != nil {
			return err
		}
		rows, err := exec.Collect(it)
		if err != nil {
			return err
		}
		res.Rows = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.RowCount = int64(len(res.Rows))
	res.Work = work
	res.Duration = d
	e.obsQueries.Inc()
	e.obsQueryRows.Add(res.RowCount)
	return res, nil
}

// planReadsDerived reports whether node reads anything beyond plain
// sequential scans of base tables: a materialized view's backing table or an
// index access path (including the inner side of an index nested-loop join).
func (e *Engine) planReadsDerived(node plan.Node) bool {
	derived := false
	plan.Walk(node, func(n plan.Node) {
		if a, ok := n.(*plan.TableAccess); ok {
			if a.Method == plan.AccessIndex || e.Catalog.View(a.Table.Name) != nil {
				derived = true
			}
		}
	})
	return derived
}

// ExplainAnalyze optimizes and executes a bound query with instrumented
// operators, returning the rendered plan with per-node actuals in
// Result.Analyzed. The query's rows are drained (and counted) but not
// returned — the plan tree is the output. Execution is measured exactly like
// RunQuery: the profiler only snapshots the meter, it never charges it, so
// an EXPLAIN ANALYZE costs the same simulated time as the bare query.
func (e *Engine) ExplainAnalyze(q *plan.Query) (res *Result, err error) {
	defer e.recoverResult("ExplainAnalyze", &res, &err)
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	node, err := plan.Optimize(e.Catalog, q, e.planOptions())
	if err != nil {
		return nil, err
	}
	prof := exec.NewProfiler(e.meter)
	ctx := e.execContext()
	prof.Attach(ctx)
	res = &Result{Plan: node, Schema: node.Schema()}
	work, d, err := e.measure(func() error {
		it, err := node.Build(ctx)
		if err != nil {
			return err
		}
		n, err := exec.Count(it)
		if err != nil {
			return err
		}
		res.RowCount = n
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Work = work
	res.Duration = d
	res.Analyzed = plan.ExplainAnalyze(node, prof, e.cfg.Rates)
	e.obsQueries.Inc()
	e.obsQueryRows.Add(res.RowCount)
	return res, nil
}

// RunGraph binds and executes a query graph with SELECT * projections.
func (e *Engine) RunGraph(g *qgraph.Graph) (*Result, error) {
	q, err := plan.BindGraph(e.Catalog, g)
	if err != nil {
		return nil, err
	}
	return e.RunQuery(q)
}

// PlanGraph optimizes a query graph without executing it (the speculation
// cost model calls this to price alternatives).
func (e *Engine) PlanGraph(g *qgraph.Graph) (plan.Node, error) {
	q, err := plan.BindGraph(e.Catalog, g)
	if err != nil {
		return nil, err
	}
	return plan.Optimize(e.Catalog, q, e.planOptions())
}

// Materialize executes graph g and stores the result as a new table
// registered as a materialized view of g. forced selects query-rewriting
// semantics (the optimizer MUST use it) versus query-materialization (an
// option). The duration covers execution, storage writes, and the analyze
// pass that gives the view statistics.
func (e *Engine) Materialize(name string, g *qgraph.Graph, forced bool) (*Result, error) {
	q, err := plan.BindGraph(e.Catalog, g)
	if err != nil {
		return nil, err
	}
	return e.materializeQuery(name, q, g, forced)
}

func (e *Engine) materializeQuery(name string, q *plan.Query, g *qgraph.Graph, forced bool) (res *Result, err error) {
	defer e.recoverResult("Materialize", &res, &err)
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	if e.Catalog.HasTable(name) {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	node, err := plan.Optimize(e.Catalog, q, e.planOptions())
	if err != nil {
		return nil, err
	}
	res = &Result{Plan: node}
	work, d, err := e.measure(func() error {
		table, err := e.Catalog.CreateTable(name, node.Schema())
		if err != nil {
			return err
		}
		it, err := node.Build(e.execContext())
		if err != nil {
			return err
		}
		// Statistics are collected from the stream as it is written, the
		// way a real engine piggybacks stats on CREATE TABLE AS SELECT —
		// no second scan.
		cols := make([][]tuple.Value, table.Schema.Len())
		var buf []byte
		var n int64
		err = exec.Drain(it, func(r tuple.Row) error {
			buf, err = tuple.EncodeRow(buf[:0], table.Schema, r)
			if err != nil {
				return err
			}
			if _, err := table.Heap.Insert(buf); err != nil {
				return err
			}
			for i, v := range r {
				cols[i] = append(cols[i], v)
			}
			n++
			return nil
		})
		if err != nil {
			// Leave no half-created table behind.
			_ = e.Catalog.DropTable(name)
			return err
		}
		res.RowCount = n
		for i, c := range table.Schema.Columns {
			table.SetColumnStats(c.Name, stats.CollectColumnStats(cols[i]))
		}
		e.meter.ChargeTuples(n) // the stats pass over the stream
		return e.Catalog.RegisterView(name, g, forced)
	})
	if err != nil {
		return nil, err
	}
	if err := e.commitStmt(name); err != nil {
		return nil, err
	}
	res.Schema = node.Schema()
	res.Work = work
	res.Duration = d
	return res, nil
}

// FreshName generates a unique table name for speculative materializations.
func (e *Engine) FreshName(prefix string) string {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	e.seq++
	return fmt.Sprintf("%s_%d", prefix, e.seq)
}

// CreateIndex builds a B+-tree index on table.column by scanning the table.
func (e *Engine) CreateIndex(table, column string) (res *Result, err error) {
	defer e.recoverResult("CreateIndex", &res, &err)
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	t, err := e.Catalog.Table(table)
	if err != nil {
		return nil, err
	}
	ord := t.Schema.Ordinal(column)
	if ord < 0 {
		return nil, fmt.Errorf("engine: table %q has no column %q", table, column)
	}
	if t.Index(column) != nil {
		return nil, fmt.Errorf("engine: index on %s.%s already exists", table, column)
	}
	res = &Result{}
	work, d, err := e.measure(func() error {
		tree, err := btree.New(e.Pool, e.Disk.PageSize())
		if err != nil {
			return err
		}
		var entries []btree.Entry
		err = t.Heap.Scan(func(rid storage.RID, rec []byte) error {
			row, _, err := tuple.DecodeRow(rec, t.Schema)
			if err != nil {
				return err
			}
			e.meter.ChargeTuples(1)
			entries = append(entries, btree.Entry{Key: tuple.EncodeKey(nil, row[ord]), RID: rid})
			res.RowCount++
			return nil
		})
		if err != nil {
			_ = tree.Drop()
			return err
		}
		btree.SortEntries(entries)
		e.meter.ChargeTuples(int64(len(entries))) // sort pass
		if err := tree.BulkLoad(entries); err != nil {
			_ = tree.Drop()
			return err
		}
		_, err = e.Catalog.AddIndex(table, column, tree)
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := e.commitStmt(table); err != nil {
		return nil, err
	}
	res.Work = work
	res.Duration = d
	return res, nil
}

// DropIndex removes the index on table.column, freeing its pages.
func (e *Engine) DropIndex(table, column string) error {
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	t, err := e.Catalog.Table(table)
	if err != nil {
		return err
	}
	idx := t.Index(column)
	if idx == nil {
		return fmt.Errorf("engine: no index on %s.%s", table, column)
	}
	if err := idx.Tree.Drop(); err != nil {
		return err
	}
	t.RemoveIndex(column)
	return e.commitStmt(table)
}

// CreateHistogram builds an equi-depth histogram on table.column, improving
// the optimizer's selectivity estimates (Section 3.2: histogram creation).
func (e *Engine) CreateHistogram(table, column string) (res *Result, err error) {
	defer e.recoverResult("CreateHistogram", &res, &err)
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	t, err := e.Catalog.Table(table)
	if err != nil {
		return nil, err
	}
	res = &Result{}
	work, d, err := e.measure(func() error {
		values, err := catalog.ColumnValues(t, column)
		if err != nil {
			return err
		}
		e.meter.ChargeTuples(int64(len(values)))
		h, err := stats.BuildHistogram(values, e.cfg.HistogramBuckets)
		if err != nil {
			return err
		}
		cs := t.ColumnStats(column)
		if cs == nil {
			cs = stats.CollectColumnStats(values)
			t.SetColumnStats(column, cs)
		}
		cs.SetHist(h)
		res.RowCount = int64(len(values))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := e.commitStmt(table); err != nil {
		return nil, err
	}
	res.Work = work
	res.Duration = d
	return res, nil
}

// DropHistogram removes the histogram on table.column.
func (e *Engine) DropHistogram(table, column string) error {
	t, err := e.Catalog.Table(table)
	if err != nil {
		return err
	}
	if cs := t.ColumnStats(column); cs != nil {
		cs.SetHist(nil)
	}
	return e.commitStmt(table)
}

// Stage pre-fetches and pins a table's heap pages in the buffer pool: the
// data-staging manipulation (Section 3.2), implementable here because we own
// the buffer pool. Staging at most half the pool is allowed, to leave room
// for query execution.
func (e *Engine) Stage(table string) (res *Result, err error) {
	defer e.recoverResult("Stage", &res, &err)
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	t, err := e.Catalog.Table(table)
	if err != nil {
		return nil, err
	}
	res = &Result{}
	work, d, err := e.measure(func() error {
		// The staging budget is half the pool ACROSS ALL staged tables —
		// otherwise repeated staging pins the whole pool and starves query
		// execution of frames.
		budget := e.Pool.Capacity()/2 - e.Pool.StagedCount()
		for _, id := range t.Heap.PageIDs() {
			if budget <= 0 {
				break
			}
			if err := e.Pool.Stage(id); err != nil {
				return err
			}
			res.RowCount++
			budget--
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Work = work
	res.Duration = d
	return res, nil
}

// Unstage releases a table's staged pages.
func (e *Engine) Unstage(table string) error {
	t, err := e.Catalog.Table(table)
	if err != nil {
		return err
	}
	for _, id := range t.Heap.PageIDs() {
		e.Pool.Unstage(id)
	}
	return nil
}

// DropTable removes a table (and any view it backs), freeing storage. It
// takes the statement lock so a drop never races an executing query that
// planned against the table.
func (e *Engine) DropTable(name string) (err error) {
	defer e.recoverTo("DropTable", &err)
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	t, err := e.Catalog.Table(name)
	if err != nil {
		return err
	}
	for _, id := range t.Heap.PageIDs() {
		e.Pool.Unstage(id) // staged pages must not block the free
	}
	if err := e.Catalog.DropTable(name); err != nil {
		return err
	}
	if err := e.commitStmt(name); err != nil {
		return err
	}
	e.bumpDataVersion(name)
	return nil
}

// CreateTable registers an empty base table (bulk-load path).
func (e *Engine) CreateTable(name string, schema *tuple.Schema) (*catalog.Table, error) {
	t, err := e.Catalog.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	if err := e.commitStmt(name); err != nil {
		return nil, err
	}
	e.bumpDataVersion(name)
	return t, nil
}

// InsertRows bulk-inserts rows into a table (no per-statement measurement —
// loading is setup, not workload). It still takes the statement lock: its
// buffer-pool traffic must not leak into a concurrent statement's meter
// delta.
func (e *Engine) InsertRows(name string, rows []tuple.Row) error {
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	t, err := e.Catalog.Table(name)
	if err != nil {
		return err
	}
	var buf []byte
	for _, r := range rows {
		buf, err = tuple.EncodeRow(buf[:0], t.Schema, r)
		if err != nil {
			return err
		}
		if _, err := t.Heap.Insert(buf); err != nil {
			return err
		}
	}
	if err := e.commitStmt(name); err != nil {
		return err
	}
	e.bumpDataVersion(name)
	return nil
}

// Analyze recomputes statistics for a table.
func (e *Engine) Analyze(name string) error {
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	t, err := e.Catalog.Table(name)
	if err != nil {
		return err
	}
	if err := catalog.Analyze(t); err != nil {
		return err
	}
	return e.commitStmt(name)
}

// ColdStart flushes and empties the buffer pool, simulating the paper's
// cold-buffer-pool experimental setup.
func (e *Engine) ColdStart() error { return e.Pool.EvictAll() }

// TotalDataPages reports the pages held by all tables (a sizing diagnostic).
func (e *Engine) TotalDataPages() int {
	total := 0
	for _, name := range e.Catalog.TableNames() {
		t, _ := e.Catalog.Table(name)
		total += t.NumPages()
	}
	return total
}
