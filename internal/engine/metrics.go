package engine

import (
	"specdb/internal/obs"
)

// Metrics returns the engine's metrics registry. Subsystems share it: the
// buffer pool mirrors its traffic counters here, speculators attach their
// lifecycle counters, and the engine itself records statement counts and
// durations. Callers wanting a consistent dump should use MetricsSnapshot,
// which refreshes derived gauges first.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Tracer returns the engine's span tracer. The engine does not own a
// simulated clock, so spans are opened by the components that do: sessions
// trace statements on their session clock and speculators trace manipulation
// issue→completion windows.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// MetricsSnapshot refreshes point-in-time gauges (buffer residency, B+-tree
// shapes, catalog sizes, in-flight jobs) and returns a snapshot of every
// metric. Counters in the snapshot are cumulative since engine construction.
func (e *Engine) MetricsSnapshot() obs.Snapshot {
	r := e.metrics
	r.Gauge("buffer.pool.capacity").Set(float64(e.Pool.Capacity()))
	r.Gauge("buffer.pool.resident").Set(float64(e.Pool.Resident()))
	r.Gauge("buffer.pool.staged").Set(float64(e.Pool.StagedCount()))
	r.Gauge("buffer.pool.hit_ratio").Set(e.Pool.Stats().HitRatio())
	r.Gauge("engine.jobs.active").Set(float64(e.ActiveJobs()))

	var indexes, pages, splits, maxHeight int64
	tables := e.Catalog.TableNames()
	for _, name := range tables {
		t, err := e.Catalog.Table(name)
		if err != nil {
			continue // dropped between listing and lookup
		}
		for _, idx := range t.IndexList() {
			indexes++
			pages += int64(idx.Tree.NumPages())
			splits += idx.Tree.Splits()
			if h := int64(idx.Tree.Height()); h > maxHeight {
				maxHeight = h
			}
		}
	}
	r.Gauge("btree.indexes").Set(float64(indexes))
	r.Gauge("btree.pages").Set(float64(pages))
	r.Gauge("btree.splits").Set(float64(splits))
	r.Gauge("btree.height.max").Set(float64(maxHeight))
	r.Gauge("catalog.tables").Set(float64(len(tables)))
	r.Gauge("catalog.views").Set(float64(len(e.Catalog.Views())))
	return r.Snapshot()
}

// statementDurationBounds bucket simulated statement durations, in
// nanoseconds: 1ms … 100s in decade-and-a-half steps.
var statementDurationBounds = []int64{
	1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10, 3e10, 1e11,
}
