// Durable mode (DESIGN.md §12): the engine on top of storage.FileDisk.
//
// The commit protocol is statement-grained redo logging. Every successful
// non-volatile mutating statement ends with FlushAll (all dirty pages become
// WAL records) followed by one commit record carrying the full engine
// metadata: catalog shapes (heaps, indexes, stats, views), the applied-
// statement sequence number, and the learned user profile. Recovery replays
// the WAL through the last commit record, rehydrates the catalog from the
// blob, and garbage-collects orphan pages — which is exactly how speculative
// `spec*` namespaces are made volatile: they are flushed like everything
// else but never referenced by a commit record, so a restart discards them
// and the speculation layer rebuilds from a clean slate.
package engine

import (
	"encoding/json"
	"fmt"
	"strings"

	"specdb/internal/btree"
	"specdb/internal/fault"
	"specdb/internal/qgraph"
	"specdb/internal/stats"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

// StorageConfig selects and tunes the durable backend. The zero value keeps
// the engine on the in-memory DiskManager, byte-identical to history.
type StorageConfig struct {
	// Path is the page file location; "" means in-memory.
	Path string
	// CheckpointBytes triggers a WAL checkpoint at commit (0 = 4 MB).
	CheckpointBytes int64
	// Sync fsyncs at durability points (off by default; see storage.FileConfig).
	Sync bool
	// Crash arms deterministic crash-point injection (tests only).
	Crash *fault.Crash
	// VolatilePrefix marks table names excluded from durability ("" means
	// "spec", covering both spec_N materializations and spec_s<id> session
	// namespaces). Statements touching only such tables do not commit, and
	// their pages are garbage-collected on recovery.
	VolatilePrefix string
}

// metaVersion guards the commit-record blob layout; bump on change.
const metaVersion = 1

type metaValue struct {
	Kind uint8   `json:"k"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
}

type metaColumn struct {
	Name string `json:"name"`
	Kind uint8  `json:"kind"`
}

type metaBucket struct {
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Count    int64   `json:"count"`
	Distinct int64   `json:"distinct"`
}

type metaHist struct {
	Total   int64        `json:"total"`
	Buckets []metaBucket `json:"buckets"`
}

type metaColStats struct {
	Col      string    `json:"col"`
	Count    int64     `json:"count"`
	Distinct int64     `json:"distinct"`
	HasRange bool      `json:"has_range"`
	Min      metaValue `json:"min"`
	Max      metaValue `json:"max"`
	Hist     *metaHist `json:"hist,omitempty"`
}

type metaIndex struct {
	Column  string  `json:"column"`
	Root    int64   `json:"root"`
	Pages   []int64 `json:"pages"`
	Height  int     `json:"height"`
	Entries int64   `json:"entries"`
}

type metaTable struct {
	Name    string         `json:"name"`
	Columns []metaColumn   `json:"columns"`
	Pages   []int64        `json:"pages"`
	Rows    int64          `json:"rows"`
	Stats   []metaColStats `json:"stats,omitempty"`
	Indexes []metaIndex    `json:"indexes,omitempty"`
}

type metaSelection struct {
	Rel   string    `json:"rel"`
	Col   string    `json:"col"`
	Op    uint8     `json:"op"`
	Const metaValue `json:"const"`
}

type metaJoin struct {
	LeftRel  string `json:"lrel"`
	LeftCol  string `json:"lcol"`
	RightRel string `json:"rrel"`
	RightCol string `json:"rcol"`
}

type metaView struct {
	Name   string          `json:"name"`
	Forced bool            `json:"forced"`
	Rels   []string        `json:"rels"`
	Sels   []metaSelection `json:"sels,omitempty"`
	Joins  []metaJoin      `json:"joins,omitempty"`
}

type metaRoot struct {
	Version    int         `json:"version"`
	AppliedSeq int64       `json:"applied_seq"`
	Tables     []metaTable `json:"tables"`
	Views      []metaView  `json:"views,omitempty"`
	Profile    []byte      `json:"profile,omitempty"`
}

func toMetaValue(v tuple.Value) metaValue {
	return metaValue{Kind: uint8(v.Kind), I: v.I, F: v.F, S: v.S}
}

func fromMetaValue(m metaValue) tuple.Value {
	return tuple.Value{Kind: tuple.Kind(m.Kind), I: m.I, F: m.F, S: m.S}
}

func toMetaPages(ids []storage.PageID) []int64 {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

func fromMetaPages(ids []int64) []storage.PageID {
	out := make([]storage.PageID, len(ids))
	for i, id := range ids {
		out[i] = storage.PageID(id)
	}
	return out
}

// Open constructs an engine like New, but when cfg.Storage.Path is set it
// runs on a durable FileDisk: existing state is recovered (catalog, base
// tables, learned profile), volatile speculation namespaces are garbage-
// collected, and every subsequent non-volatile mutating statement commits.
func Open(cfg Config) (*Engine, error) {
	if cfg.Storage.Path == "" {
		return New(cfg), nil
	}
	if cfg.Storage.VolatilePrefix == "" {
		cfg.Storage.VolatilePrefix = "spec"
	}
	fd, err := storage.OpenFileDisk(storage.FileConfig{
		Path:            cfg.Storage.Path,
		PageSize:        cfg.PageSize,
		CheckpointBytes: cfg.Storage.CheckpointBytes,
		Sync:            cfg.Storage.Sync,
		Gate:            cfg.Storage.Crash,
	})
	if err != nil {
		return nil, err
	}
	e := build(cfg, fd)
	e.fileDisk = fd
	e.Pool.SetDurableAccounting(true)
	e.obsCommits = e.metrics.Counter("engine.durable.commits")
	e.obsCheckpointPages = e.metrics.Counter("engine.durable.checkpoint_pages")
	if err := e.restoreDurable(); err != nil {
		_ = fd.Close()
		return nil, fmt.Errorf("engine: recovery failed: %w", err)
	}
	return e, nil
}

// restoreDurable rehydrates the catalog from the last commit record, frees
// orphan pages (speculative namespaces, aborted statements), and seals the
// recovered state with a fresh commit. It runs once from Open, before any
// concurrent access, but holds durMu throughout so the guarded durable
// fields are only ever touched under the lock.
func (e *Engine) restoreDurable() error {
	e.durMu.Lock()
	defer e.durMu.Unlock()
	blob := e.fileDisk.Meta()
	if len(blob) > 0 {
		var root metaRoot
		if err := json.Unmarshal(blob, &root); err != nil {
			return fmt.Errorf("engine: decode commit metadata: %w", err)
		}
		if root.Version != metaVersion {
			return fmt.Errorf("engine: commit metadata version %d, want %d", root.Version, metaVersion)
		}
		for _, mt := range root.Tables {
			cols := make([]tuple.Column, len(mt.Columns))
			for i, c := range mt.Columns {
				cols[i] = tuple.Column{Name: c.Name, Kind: tuple.Kind(c.Kind)}
			}
			schema := tuple.NewSchema(cols...)
			heap := storage.OpenHeapFile(e.Pool, fromMetaPages(mt.Pages), mt.Rows)
			t, err := e.Catalog.RestoreTable(mt.Name, schema, heap)
			if err != nil {
				return err
			}
			for _, ms := range mt.Stats {
				cs := &stats.ColumnStats{
					Count:    ms.Count,
					Distinct: ms.Distinct,
					HasRange: ms.HasRange,
					Min:      fromMetaValue(ms.Min),
					Max:      fromMetaValue(ms.Max),
				}
				if ms.Hist != nil {
					h := &stats.Histogram{Total: ms.Hist.Total}
					for _, b := range ms.Hist.Buckets {
						h.Buckets = append(h.Buckets, stats.Bucket{
							Lo: b.Lo, Hi: b.Hi, Count: b.Count, Distinct: b.Distinct,
						})
					}
					cs.SetHist(h)
				}
				t.SetColumnStats(ms.Col, cs)
			}
			for _, mi := range mt.Indexes {
				tree := btree.Open(e.Pool, e.Disk.PageSize(), storage.PageID(mi.Root),
					fromMetaPages(mi.Pages), mi.Height, mi.Entries)
				if _, err := e.Catalog.AddIndex(mt.Name, mi.Column, tree); err != nil {
					return err
				}
			}
		}
		for _, mv := range root.Views {
			g := qgraph.New()
			for _, rel := range mv.Rels {
				g.AddRelation(rel)
			}
			for _, ms := range mv.Sels {
				g.AddSelection(qgraph.Selection{
					Rel: ms.Rel, Col: ms.Col,
					Op: tuple.CmpOp(ms.Op), Const: fromMetaValue(ms.Const),
				})
			}
			for _, mj := range mv.Joins {
				g.AddJoin(qgraph.NewJoin(mj.LeftRel, mj.LeftCol, mj.RightRel, mj.RightCol))
			}
			if err := e.Catalog.RegisterView(mv.Name, g, mv.Forced); err != nil {
				return err
			}
		}
		e.appliedSeq = root.AppliedSeq
		e.recoveredProfile = root.Profile
		e.lastProfile = root.Profile
	}

	// Orphan GC: every allocated page not referenced by a committed heap or
	// index belongs to a speculative namespace or an aborted statement. Both
	// are gone by design; reclaim the pages.
	referenced := make(map[storage.PageID]bool)
	for _, name := range e.Catalog.TableNames() {
		t, err := e.Catalog.Table(name)
		if err != nil {
			return err
		}
		for _, id := range t.Heap.PageIDs() {
			referenced[id] = true
		}
		for _, idx := range t.IndexList() {
			for _, id := range idx.Tree.PageIDs() {
				referenced[id] = true
			}
		}
	}
	for _, id := range e.fileDisk.AllocatedIDs() {
		if !referenced[id] {
			if err := e.Pool.Free(id); err != nil {
				return err
			}
			e.recoveredOrphans++
		}
	}
	// Seal: commit the post-GC state so the next crash recovers straight to
	// it (and the WAL starts the session truncated).
	return e.commitLocked(false)
}

// buildMetaLocked (caller holds durMu) serializes the full non-volatile engine state for one commit
// record. Iteration orders are sorted (catalog names, schema order), so
// equal states produce byte-equal blobs.
func (e *Engine) buildMetaLocked() ([]byte, error) {
	root := metaRoot{Version: metaVersion, AppliedSeq: e.appliedSeq}
	for _, name := range e.Catalog.TableNames() {
		if strings.HasPrefix(name, e.cfg.Storage.VolatilePrefix) {
			continue
		}
		t, err := e.Catalog.Table(name)
		if err != nil {
			return nil, err
		}
		mt := metaTable{
			Name:  name,
			Pages: toMetaPages(t.Heap.PageIDs()),
			Rows:  t.Heap.NumRows(),
		}
		for _, c := range t.Schema.Columns {
			mt.Columns = append(mt.Columns, metaColumn{Name: c.Name, Kind: uint8(c.Kind)})
		}
		for _, c := range t.Schema.Columns {
			cs := t.ColumnStats(c.Name)
			if cs == nil {
				continue
			}
			ms := metaColStats{
				Col:      c.Name,
				Count:    cs.Count,
				Distinct: cs.Distinct,
				HasRange: cs.HasRange,
				Min:      toMetaValue(cs.Min),
				Max:      toMetaValue(cs.Max),
			}
			if h := cs.Hist(); h != nil {
				mh := &metaHist{Total: h.Total}
				for _, b := range h.Buckets {
					mh.Buckets = append(mh.Buckets, metaBucket{
						Lo: b.Lo, Hi: b.Hi, Count: b.Count, Distinct: b.Distinct,
					})
				}
				ms.Hist = mh
			}
			mt.Stats = append(mt.Stats, ms)
		}
		for _, idx := range t.IndexList() {
			mt.Indexes = append(mt.Indexes, metaIndex{
				Column:  idx.Column,
				Root:    int64(idx.Tree.Root()),
				Pages:   toMetaPages(idx.Tree.PageIDs()),
				Height:  idx.Tree.Height(),
				Entries: idx.Tree.Len(),
			})
		}
		root.Tables = append(root.Tables, mt)
	}
	for _, v := range e.Catalog.Views() {
		if strings.HasPrefix(v.Name, e.cfg.Storage.VolatilePrefix) {
			continue
		}
		mv := metaView{Name: v.Name, Forced: v.Forced, Rels: v.Graph.Relations()}
		for _, s := range v.Graph.Selections() {
			mv.Sels = append(mv.Sels, metaSelection{
				Rel: s.Rel, Col: s.Col, Op: uint8(s.Op), Const: toMetaValue(s.Const),
			})
		}
		for _, j := range v.Graph.Joins() {
			mv.Joins = append(mv.Joins, metaJoin{
				LeftRel: j.LeftRel, LeftCol: j.LeftCol,
				RightRel: j.RightRel, RightCol: j.RightCol,
			})
		}
		root.Views = append(root.Views, mv)
	}
	if e.profileSrc != nil {
		p, err := e.profileSrc()
		if err != nil {
			return nil, err
		}
		root.Profile = p
		e.lastProfile = p
	} else {
		// No live learner attached yet (e.g. the seal commit during Open):
		// carry the recovered profile forward rather than dropping it.
		root.Profile = e.lastProfile
	}
	return json.Marshal(root)
}

// commitStmt is called at the end of every successful mutating statement
// with the table names the statement touched. On in-memory engines it is a
// no-op; statements confined to the volatile speculation namespace skip the
// commit entirely (their pages die with the process, by design).
func (e *Engine) commitStmt(names ...string) error {
	if e.fileDisk == nil {
		return nil
	}
	for _, n := range names {
		if strings.HasPrefix(n, e.cfg.Storage.VolatilePrefix) {
			return nil
		}
	}
	e.durMu.Lock()
	defer e.durMu.Unlock()
	return e.commitLocked(true)
}

// commitLocked flushes dirty pages and appends one commit record. bump
// advances the applied-statement sequence (false for seal/close commits,
// which re-commit existing state).
func (e *Engine) commitLocked(bump bool) error {
	if err := e.Pool.FlushAll(); err != nil {
		return err
	}
	if bump {
		e.appliedSeq++
	}
	blob, err := e.buildMetaLocked()
	if err == nil {
		var flushed int
		flushed, err = e.fileDisk.Commit(blob)
		if flushed > 0 {
			// Checkpoint page flushes are real physical writes; the meter is
			// the single accounting point, so charge them here.
			e.meter.ChargePageWrite(int64(flushed))
			e.obsCheckpointPages.Add(int64(flushed))
		}
	}
	if err != nil {
		if bump {
			e.appliedSeq--
		}
		return err
	}
	e.obsCommits.Inc()
	return nil
}

// Close commits the current state (capturing the latest learned profile)
// and releases the durable backend. In-memory engines close trivially.
func (e *Engine) Close() error {
	if e.fileDisk == nil {
		return nil
	}
	e.durMu.Lock()
	commitErr := e.commitLocked(false)
	e.durMu.Unlock()
	closeErr := e.fileDisk.Close()
	if commitErr != nil {
		return commitErr
	}
	return closeErr
}

// Checkpoint commits and forces the WAL to be folded into the page file.
func (e *Engine) Checkpoint() error {
	if e.fileDisk == nil {
		return nil
	}
	e.durMu.Lock()
	defer e.durMu.Unlock()
	if err := e.commitLocked(false); err != nil {
		return err
	}
	flushed, err := e.fileDisk.Checkpoint()
	if flushed > 0 {
		e.meter.ChargePageWrite(int64(flushed))
		e.obsCheckpointPages.Add(int64(flushed))
	}
	return err
}

// AppliedSeq reports the number of committed mutating statements — the
// resume point for a trace replayed over a recovered engine.
func (e *Engine) AppliedSeq() int64 {
	e.durMu.Lock()
	defer e.durMu.Unlock()
	return e.appliedSeq
}

// SetProfileSource attaches the learned-profile exporter consulted at each
// commit (the specdb layer owns the Learner; the engine only persists it).
func (e *Engine) SetProfileSource(fn func() ([]byte, error)) {
	e.durMu.Lock()
	defer e.durMu.Unlock()
	e.profileSrc = fn
}

// RecoveredProfile returns the learned-profile blob restored by recovery
// (nil on fresh databases and in-memory engines).
func (e *Engine) RecoveredProfile() []byte {
	e.durMu.Lock()
	defer e.durMu.Unlock()
	return e.recoveredProfile
}

// RecoveredOrphans reports how many orphan pages recovery reclaimed.
func (e *Engine) RecoveredOrphans() int {
	e.durMu.Lock()
	defer e.durMu.Unlock()
	return e.recoveredOrphans
}

// FileDisk exposes the durable backend (nil on in-memory engines).
func (e *Engine) FileDisk() *storage.FileDisk { return e.fileDisk }

// Durable reports whether the engine runs on a durable backend.
func (e *Engine) Durable() bool { return e.fileDisk != nil }
