package engine

import (
	"strings"
	"testing"

	"specdb/internal/fault"
	"specdb/internal/qgraph"
	"specdb/internal/tuple"
)

// TestDegradedReplanAroundBadView: when a forced materialized view turns out
// to be unreadable at execution time, the query transparently replans against
// base tables and still answers correctly.
func TestDegradedReplanAroundBadView(t *testing.T) {
	e := newTestEngine(t, 400, Config{})
	const q = "SELECT * FROM R WHERE R.c > 10"
	base, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	g := qgraph.SelectionSubgraph(qgraph.Selection{
		Rel: "R", Col: "c", Op: tuple.CmpGT, Const: tuple.NewInt(10),
	})
	if _, err := e.Materialize("spec_bad", g, true); err != nil {
		t.Fatal(err)
	}
	if err := e.ColdStart(); err != nil {
		t.Fatal(err)
	}
	// Sabotage: free the view's heap pages on disk, so the forced rewrite
	// plans a scan of a table that can no longer be read.
	vt, err := e.Catalog.Table("spec_bad")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range vt.Heap.PageIDs() {
		if err := e.Disk.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Exec(q)
	if err != nil {
		t.Fatalf("query not replanned around the bad view: %v", err)
	}
	if res.RowCount != base.RowCount {
		t.Fatalf("degraded run returned %d rows, fault-free %d", res.RowCount, base.RowCount)
	}
	if v := e.Metrics().Counter("engine.replans").Value(); v == 0 {
		t.Fatal("replan not counted")
	}
	// A query that never touches derived objects is unaffected.
	if _, err := e.Exec("SELECT * FROM S WHERE S.a > 0"); err != nil {
		t.Fatal(err)
	}
}

// TestPanicRecoveryAtStatementBoundary: a panic below a statement entry point
// becomes an error with the stack preserved in the panic log.
func TestPanicRecoveryAtStatementBoundary(t *testing.T) {
	e := newTestEngine(t, 10, Config{})
	err := func() (err error) {
		defer e.recoverTo("TestOp", &err)
		panic("simulated internal bug")
	}()
	if err == nil {
		t.Fatal("panic not converted to an error")
	}
	if !strings.Contains(err.Error(), "internal error") || !strings.Contains(err.Error(), "simulated internal bug") {
		t.Fatalf("error %q does not describe the recovered panic", err)
	}
	if e.PanicLog().Total() != 1 {
		t.Fatalf("panic log total %d, want 1", e.PanicLog().Total())
	}
	recs := e.PanicLog().Records()
	if len(recs) != 1 || recs[0].Op != "TestOp" || !strings.Contains(recs[0].Stack, "fault_test") {
		t.Fatalf("panic record %+v lacks op or stack", recs[0])
	}
	if v := e.Metrics().Counter("recovered_panics").Value(); v != 1 {
		t.Fatalf("recovered_panics = %d, want 1", v)
	}
	// The engine keeps serving statements afterwards.
	if _, err := e.Exec("SELECT * FROM R WHERE R.c > 10"); err != nil {
		t.Fatalf("engine unusable after recovered panic: %v", err)
	}
}

// TestFaultConfigThreadsThroughEngine: an engine built with fault injection
// still answers queries correctly, and the injector is observable.
func TestFaultConfigThreadsThroughEngine(t *testing.T) {
	clean := newTestEngine(t, 200, Config{})
	base, err := clean.Exec("SELECT * FROM R WHERE R.c > 10")
	if err != nil {
		t.Fatal(err)
	}
	faulty := newTestEngine(t, 200, Config{Fault: fault.Config{
		Seed: 13, ReadErrorRate: 0.05, WriteErrorRate: 0.05, CorruptionRate: 0.02, FrameExhaustionRate: 0.05,
	}})
	if faulty.FaultInjector() == nil {
		t.Fatal("fault config did not build an injector")
	}
	res, err := faulty.Exec("SELECT * FROM R WHERE R.c > 10")
	if err != nil {
		t.Fatalf("query failed under injected faults: %v", err)
	}
	if res.RowCount != base.RowCount {
		t.Fatalf("faulty engine returned %d rows, clean %d", res.RowCount, base.RowCount)
	}
	if clean.FaultInjector() != nil {
		t.Fatal("clean engine grew an injector")
	}
}
