package sql

import (
	"fmt"
	"strings"

	"specdb/internal/qgraph"
	"specdb/internal/tuple"
)

// RenderForm renders a query graph plus a qualified projection list
// ("rel.col" strings) as a SELECT statement — the textual identity of a
// predicted final query form (DESIGN.md §14). The rendering is canonical:
// relations, selections, and joins appear in their sorted graph order, so two
// graphs with equal keys render byte-identically.
func RenderForm(g *qgraph.Graph, projs []string) *SelectStmt {
	stmt := &SelectStmt{From: g.Relations()}
	for _, p := range projs {
		if i := strings.IndexByte(p, '.'); i >= 0 {
			stmt.Projections = append(stmt.Projections, ColRef{Rel: p[:i], Col: p[i+1:]})
		} else {
			stmt.Projections = append(stmt.Projections, ColRef{Col: p})
		}
	}
	for _, s := range g.Selections() {
		c := s.Const
		stmt.Where = append(stmt.Where, Condition{
			Left:       ColRef{Rel: s.Rel, Col: s.Col},
			Op:         s.Op,
			RightConst: &c,
		})
	}
	for _, j := range g.Joins() {
		right := ColRef{Rel: j.RightRel, Col: j.RightCol}
		stmt.Where = append(stmt.Where, Condition{
			Left:     ColRef{Rel: j.LeftRel, Col: j.LeftCol},
			Op:       tuple.CmpEQ,
			RightCol: &right,
		})
	}
	return stmt
}

// GraphOfSelect reconstructs the query graph and qualified projection list a
// SELECT statement denotes, catalog-free — the inverse of RenderForm. Every
// column reference must be relation-qualified and resolve inside FROM (a
// catalog could disambiguate bare columns; a form cannot), and self-joins are
// rejected at this boundary like every other input boundary, so the round
// trip RenderForm → String → Parse → GraphOfSelect reproduces the original
// graph key exactly.
func GraphOfSelect(stmt *SelectStmt) (*qgraph.Graph, []string, error) {
	g := qgraph.New()
	have := make(map[string]bool, len(stmt.From))
	for _, rel := range stmt.From {
		if have[rel] {
			return nil, nil, fmt.Errorf("sql: relation %s appears twice in FROM", rel)
		}
		have[rel] = true
		g.AddRelation(rel)
	}
	qualified := func(c ColRef) error {
		if c.Rel == "" {
			return fmt.Errorf("sql: form column %s must be relation-qualified", c.Col)
		}
		if !have[c.Rel] {
			return fmt.Errorf("sql: column %s references a relation outside FROM", c)
		}
		return nil
	}
	projs := make([]string, 0, len(stmt.Projections))
	for _, p := range stmt.Projections {
		if err := qualified(p); err != nil {
			return nil, nil, err
		}
		projs = append(projs, p.Rel+"."+p.Col)
	}
	for _, c := range stmt.Where {
		if err := qualified(c.Left); err != nil {
			return nil, nil, err
		}
		if c.IsJoin() {
			if err := qualified(*c.RightCol); err != nil {
				return nil, nil, err
			}
			if c.RightCol.Rel == c.Left.Rel {
				return nil, nil, fmt.Errorf("sql: self-join on %s", c.Left.Rel)
			}
			g.AddJoin(qgraph.NewJoin(c.Left.Rel, c.Left.Col, c.RightCol.Rel, c.RightCol.Col))
		} else {
			g.AddSelection(qgraph.Selection{Rel: c.Left.Rel, Col: c.Left.Col, Op: c.Op, Const: *c.RightConst})
		}
	}
	return g, projs, nil
}
