package sql

import (
	"math"
	"testing"

	"specdb/internal/qgraph"
	"specdb/internal/sim"
	"specdb/internal/tuple"
)

// FuzzPredictedForm checks the predicted-final-form round trip the answer
// cache's identity rests on (DESIGN.md §14): an arbitrary query graph rendered
// by RenderForm, printed by String, re-parsed, and reconstructed by
// GraphOfSelect must reproduce the exact graph key and projection list. The
// graph is derived deterministically from the fuzz inputs, so every crash
// input replays byte-identically.
func FuzzPredictedForm(f *testing.F) {
	f.Add(uint64(1), int64(5), 2.5, "bob")
	f.Add(uint64(7), int64(-3), 1e6, "it's")
	f.Add(uint64(42), int64(0), -0.0, "")
	f.Add(uint64(99), int64(12345), 5e-324, "日本")
	f.Fuzz(func(t *testing.T, seed uint64, iv int64, fv float64, sv string) {
		if math.IsNaN(fv) || math.IsInf(fv, 0) {
			t.Skip("NaN/Inf have no SQL literal")
		}
		rng := sim.NewRandStream(seed, "predicted-form-fuzz")
		rels := []string{"r0", "r1", "r2", "r3"}
		cols := []string{"c0", "c1", "c2"}
		ops := []tuple.CmpOp{tuple.CmpEQ, tuple.CmpNE, tuple.CmpLT, tuple.CmpLE, tuple.CmpGT, tuple.CmpGE}
		consts := []tuple.Value{
			tuple.NewInt(iv),
			tuple.NewFloat(fv),
			tuple.NewString(sv),
			tuple.NewDate(iv % 50000),
		}

		g := qgraph.New()
		used := rels[:1+rng.Intn(len(rels))]
		for _, rel := range used {
			g.AddRelation(rel)
		}
		for n := rng.Intn(4); n > 0; n-- {
			g.AddSelection(qgraph.Selection{
				Rel:   used[rng.Intn(len(used))],
				Col:   cols[rng.Intn(len(cols))],
				Op:    ops[rng.Intn(len(ops))],
				Const: consts[rng.Intn(len(consts))],
			})
		}
		if len(used) >= 2 {
			for n := rng.Intn(3); n > 0; n-- {
				a, b := rng.Intn(len(used)), rng.Intn(len(used))
				if a == b {
					continue
				}
				g.AddJoin(qgraph.NewJoin(used[a], cols[rng.Intn(len(cols))], used[b], cols[rng.Intn(len(cols))]))
			}
		}
		var projs []string
		for n := rng.Intn(3); n > 0; n-- {
			projs = append(projs, used[rng.Intn(len(used))]+"."+cols[rng.Intn(len(cols))])
		}

		rendered := RenderForm(g, projs).String()
		re, err := ParseSelect(rendered)
		if err != nil {
			t.Fatalf("rendered form %q does not re-parse: %v", rendered, err)
		}
		g2, projs2, err := GraphOfSelect(re)
		if err != nil {
			t.Fatalf("re-parsed form %q does not reconstruct: %v", rendered, err)
		}
		if g2.Key() != g.Key() {
			t.Fatalf("graph key drifted through the round trip of %q:\n first: %s\nsecond: %s", rendered, g.Key(), g2.Key())
		}
		if len(projs2) != len(projs) {
			t.Fatalf("projection list drifted through %q: %v vs %v", rendered, projs, projs2)
		}
		for i := range projs {
			if projs[i] != projs2[i] {
				t.Fatalf("projection %d drifted through %q: %q vs %q", i, rendered, projs[i], projs2[i])
			}
		}
	})
}
