package sql

import (
	"fmt"
	"strconv"
	"strings"

	"specdb/internal/tuple"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %s", p.cur)
	}
	return stmt, nil
}

// ParseSelect parses a statement that must be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement, got %T", stmt)
	}
	return sel, nil
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// keyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) keyword(kw string) bool {
	return p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, kw)
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sql: expected %s, got %s", strings.ToUpper(kw), p.cur)
	}
	return p.advance()
}

// expectPunct consumes the given punctuation or fails.
func (p *parser) expectPunct(s string) error {
	if p.cur.kind != tokPunct || p.cur.text != s {
		return fmt.Errorf("sql: expected %q, got %s", s, p.cur)
	}
	return p.advance()
}

// ident consumes an identifier and returns its text.
func (p *parser) ident() (string, error) {
	if p.cur.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %s", p.cur)
	}
	text := p.cur.text
	if err := p.advance(); err != nil {
		return "", err
	}
	return text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.keyword("select"):
		return p.parseSelect()
	case p.keyword("explain"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		analyze := false
		if p.keyword("analyze") {
			analyze = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel, Analyze: analyze}, nil
	case p.keyword("create"):
		return p.parseCreate()
	case p.keyword("drop"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("table"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name}, nil
	default:
		return nil, fmt.Errorf("sql: expected a statement, got %s", p.cur)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.advance(); err != nil { // consume CREATE
		return nil, err
	}
	var histogram bool
	switch {
	case p.keyword("index"):
	case p.keyword("histogram"):
		histogram = true
	default:
		return nil, fmt.Errorf("sql: expected INDEX or HISTOGRAM after CREATE, got %s", p.cur)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if histogram {
		return &CreateHistogramStmt{Table: table, Column: col}, nil
	}
	return &CreateIndexStmt{Table: table, Column: col}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}

	// Projection list: * or col[, col]...
	if p.cur.kind == tokPunct && p.cur.text == "*" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.Projections = append(stmt.Projections, ref)
			if p.cur.kind == tokPunct && p.cur.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, name)
		if p.cur.kind == tokPunct && p.cur.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}

	if p.keyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, cond)
			if p.keyword("and") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}

	if p.keyword("into") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Accept the optional TABLE noise word the paper's example uses
		// ("INTO TABLE young_employee").
		if p.keyword("table") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Into = name
	}
	return stmt, nil
}

// parseColRef parses ident[.ident].
func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	return p.parseColRefFrom(first)
}

// parseColRefFrom finishes a column reference whose first identifier has
// already been consumed (the date-literal lookahead needs this split).
func (p *parser) parseColRefFrom(first string) (ColRef, error) {
	if p.cur.kind == tokPunct && p.cur.text == "." {
		if err := p.advance(); err != nil {
			return ColRef{}, err
		}
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Rel: first, Col: col}, nil
	}
	return ColRef{Col: first}, nil
}

// parseCondition parses colref op (colref | constant).
func (p *parser) parseCondition() (Condition, error) {
	left, err := p.parseColRef()
	if err != nil {
		return Condition{}, err
	}
	if p.cur.kind != tokOp {
		return Condition{}, fmt.Errorf("sql: expected comparison operator, got %s", p.cur)
	}
	op, ok := tuple.ParseCmpOp(p.cur.text)
	if !ok {
		return Condition{}, fmt.Errorf("sql: unknown operator %s", p.cur)
	}
	if err := p.advance(); err != nil {
		return Condition{}, err
	}

	switch p.cur.kind {
	case tokNumber:
		v, err := parseNumber(p.cur.text)
		if err != nil {
			return Condition{}, err
		}
		if err := p.advance(); err != nil {
			return Condition{}, err
		}
		return Condition{Left: left, Op: op, RightConst: &v}, nil
	case tokString:
		v := tuple.NewString(p.cur.text)
		if err := p.advance(); err != nil {
			return Condition{}, err
		}
		return Condition{Left: left, Op: op, RightConst: &v}, nil
	case tokIdent:
		// A date literal (date(N), the rendering Value.String emits) or a join
		// condition. The lookahead is one token: only "date" followed by "("
		// is a literal; a bare "date" column reference still parses.
		first, err := p.ident()
		if err != nil {
			return Condition{}, err
		}
		if strings.EqualFold(first, "date") && p.cur.kind == tokPunct && p.cur.text == "(" {
			if err := p.advance(); err != nil {
				return Condition{}, err
			}
			if p.cur.kind != tokNumber {
				return Condition{}, fmt.Errorf("sql: expected a day count in date(), got %s", p.cur)
			}
			days, err := strconv.ParseInt(p.cur.text, 10, 64)
			if err != nil {
				return Condition{}, fmt.Errorf("sql: bad date literal %q: %w", p.cur.text, err)
			}
			if err := p.advance(); err != nil {
				return Condition{}, err
			}
			if err := p.expectPunct(")"); err != nil {
				return Condition{}, err
			}
			v := tuple.NewDate(days)
			return Condition{Left: left, Op: op, RightConst: &v}, nil
		}
		// Join condition: only equality joins are in the dialect (and in the
		// paper's interface model).
		right, err := p.parseColRefFrom(first)
		if err != nil {
			return Condition{}, err
		}
		if op != tuple.CmpEQ {
			return Condition{}, fmt.Errorf("sql: join conditions must use =, got %s", op)
		}
		return Condition{Left: left, Op: op, RightCol: &right}, nil
	default:
		return Condition{}, fmt.Errorf("sql: expected a constant or column after operator, got %s", p.cur)
	}
}

func parseNumber(text string) (tuple.Value, error) {
	if strings.ContainsAny(text, ".eE") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("sql: bad number %q: %w", text, err)
		}
		return tuple.NewFloat(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return tuple.Value{}, fmt.Errorf("sql: bad number %q: %w", text, err)
	}
	return tuple.NewInt(i), nil
}
