package sql

import (
	"fmt"
	"strings"

	"specdb/internal/tuple"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColRef names a column, optionally qualified by a relation.
type ColRef struct {
	Rel string // "" if unqualified
	Col string
}

// String renders the reference in SQL form.
func (c ColRef) String() string {
	if c.Rel == "" {
		return c.Col
	}
	return c.Rel + "." + c.Col
}

// Condition is one conjunct of a WHERE clause: either a selection
// (column op constant) or an equi-join (column = column).
type Condition struct {
	Left ColRef
	Op   tuple.CmpOp
	// Exactly one of RightCol / RightConst is set.
	RightCol   *ColRef
	RightConst *tuple.Value
}

// IsJoin reports whether the condition compares two columns.
func (c Condition) IsJoin() bool { return c.RightCol != nil }

// String renders the condition in SQL form.
func (c Condition) String() string {
	if c.IsJoin() {
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, *c.RightCol)
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, renderConst(*c.RightConst))
}

// renderConst formats a constant as a SQL literal the parser accepts back:
// string values are quoted with embedded quotes doubled; a float that would
// print indistinguishably from an int (no '.' or exponent) gets a ".0" marker
// so it re-parses as a float; everything else uses the value's own rendering
// (date(N) is a literal form the parser recognizes).
func renderConst(v tuple.Value) string {
	switch v.Kind {
	case tuple.KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case tuple.KindFloat:
		s := v.String()
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}

// SelectStmt is a conjunctive query, optionally materializing INTO a table.
type SelectStmt struct {
	Projections []ColRef // empty means SELECT *
	From        []string
	Where       []Condition
	Into        string // "" for a plain query
}

func (*SelectStmt) stmt() {}

// String renders the statement back to SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(s.Projections) == 0 {
		b.WriteString("*")
	} else {
		parts := make([]string, len(s.Projections))
		for i, p := range s.Projections {
			parts[i] = p.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(s.From, ", "))
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(s.Where))
		for i, c := range s.Where {
			parts[i] = c.String()
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if s.Into != "" {
		b.WriteString(" INTO ")
		b.WriteString(s.Into)
	}
	return b.String()
}

// CreateIndexStmt is CREATE INDEX ON table(col).
type CreateIndexStmt struct {
	Table  string
	Column string
}

func (*CreateIndexStmt) stmt() {}

// CreateHistogramStmt is CREATE HISTOGRAM ON table(col).
type CreateHistogramStmt struct {
	Table  string
	Column string
}

func (*CreateHistogramStmt) stmt() {}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
}

func (*DropTableStmt) stmt() {}

// ExplainStmt wraps a query whose plan should be printed. With Analyze set
// (EXPLAIN ANALYZE) the query is additionally executed with instrumented
// operators and the rendered plan carries per-node actuals.
type ExplainStmt struct {
	Query   *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}
