package sql

import (
	"strings"
	"testing"

	"specdb/internal/tuple"
)

func TestParsePaperIntroQuery(t *testing.T) {
	// The running example from Section 1 of the paper.
	stmt, err := ParseSelect("SELECT name FROM employee WHERE age < 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Projections) != 1 || stmt.Projections[0].Col != "name" {
		t.Fatalf("projections %v", stmt.Projections)
	}
	if len(stmt.From) != 1 || stmt.From[0] != "employee" {
		t.Fatalf("from %v", stmt.From)
	}
	if len(stmt.Where) != 1 {
		t.Fatalf("where %v", stmt.Where)
	}
	c := stmt.Where[0]
	if c.IsJoin() || c.Left.Col != "age" || c.Op != tuple.CmpLT || c.RightConst.I != 30 {
		t.Fatalf("condition %v", c)
	}
}

func TestParsePaperMaterialization(t *testing.T) {
	// The speculative materialization from Section 1, INTO TABLE form.
	stmt, err := ParseSelect("SELECT * FROM employee WHERE age < 30 INTO TABLE young_employee")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Projections) != 0 {
		t.Fatal("SELECT * should have empty projections")
	}
	if stmt.Into != "young_employee" {
		t.Fatalf("into %q", stmt.Into)
	}
	// And the bare INTO form.
	stmt2, err := ParseSelect("SELECT * FROM employee INTO t2")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.Into != "t2" {
		t.Fatalf("into %q", stmt2.Into)
	}
}

func TestParseFigure2Query(t *testing.T) {
	stmt, err := ParseSelect(`
		SELECT * FROM R, S, W
		WHERE R.a = S.a AND S.b = W.b AND R.c > 10 AND W.d < 2000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 3 {
		t.Fatalf("from %v", stmt.From)
	}
	if len(stmt.Where) != 4 {
		t.Fatalf("where %v", stmt.Where)
	}
	joins, sels := 0, 0
	for _, c := range stmt.Where {
		if c.IsJoin() {
			joins++
		} else {
			sels++
		}
	}
	if joins != 2 || sels != 2 {
		t.Fatalf("joins=%d sels=%d", joins, sels)
	}
	if stmt.Where[0].Left.Rel != "R" || stmt.Where[0].RightCol.Rel != "S" {
		t.Fatalf("first join %v", stmt.Where[0])
	}
}

func TestParseConstants(t *testing.T) {
	stmt, err := ParseSelect(`SELECT * FROM t WHERE a = -5 AND b >= 2.75 AND c = 'it''s' AND d <> 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	w := stmt.Where
	if w[0].RightConst.Kind != tuple.KindInt || w[0].RightConst.I != -5 {
		t.Fatalf("int const %v", w[0].RightConst)
	}
	if w[1].RightConst.Kind != tuple.KindFloat || w[1].RightConst.F != 2.75 {
		t.Fatalf("float const %v", w[1].RightConst)
	}
	if w[2].RightConst.S != "it's" {
		t.Fatalf("escaped string %q", w[2].RightConst.S)
	}
	if w[3].Op != tuple.CmpNE {
		t.Fatalf("op %v", w[3].Op)
	}
}

func TestParseOperators(t *testing.T) {
	for text, want := range map[string]tuple.CmpOp{
		"=": tuple.CmpEQ, "<": tuple.CmpLT, "<=": tuple.CmpLE,
		">": tuple.CmpGT, ">=": tuple.CmpGE, "<>": tuple.CmpNE, "!=": tuple.CmpNE,
	} {
		stmt, err := ParseSelect("SELECT * FROM t WHERE a " + text + " 1")
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if stmt.Where[0].Op != want {
			t.Fatalf("%s parsed as %v", text, stmt.Where[0].Op)
		}
	}
}

func TestParseDDL(t *testing.T) {
	stmt, err := Parse("CREATE INDEX ON lineitem(l_price)")
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := stmt.(*CreateIndexStmt)
	if !ok || ci.Table != "lineitem" || ci.Column != "l_price" {
		t.Fatalf("create index: %+v", stmt)
	}

	stmt, err = Parse("CREATE HISTOGRAM ON orders(o_total)")
	if err != nil {
		t.Fatal(err)
	}
	ch, ok := stmt.(*CreateHistogramStmt)
	if !ok || ch.Table != "orders" || ch.Column != "o_total" {
		t.Fatalf("create histogram: %+v", stmt)
	}

	stmt, err = Parse("DROP TABLE spec_m1")
	if err != nil {
		t.Fatal(err)
	}
	dt, ok := stmt.(*DropTableStmt)
	if !ok || dt.Name != "spec_m1" {
		t.Fatalf("drop: %+v", stmt)
	}

	stmt, err = Parse("EXPLAIN SELECT * FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok || len(ex.Query.Where) != 1 {
		t.Fatalf("explain: %+v", stmt)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := ParseSelect("select * from t where a = 1 and b = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSelect("SeLeCt * FrOm t"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a",
		"SELECT * FROM t WHERE a =",
		"SELECT * FROM t WHERE a < b.c",        // non-equality join
		"SELECT * FROM t WHERE a = 1 OR b = 2", // disjunction not in dialect
		"SELECT * FROM t trailing",
		"FROB TABLE x",
		"CREATE VIEW v",
		"DROP x",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a @ 1",
		"SELECT a. FROM t",
		"SELECT * FROM t INTO",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseNonSelectViaParseSelect(t *testing.T) {
	if _, err := ParseSelect("DROP TABLE t"); err == nil {
		t.Fatal("ParseSelect should reject DDL")
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT name FROM employee WHERE age < 30",
		"SELECT * FROM R, S WHERE R.a = S.a AND R.c > 10 INTO t1",
		"SELECT a, b.c FROM b, d WHERE b.x = d.y AND a >= 2.5 AND name = 'bob'",
	}
	for _, src := range srcs {
		stmt, err := ParseSelect(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		re, err := ParseSelect(stmt.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", stmt.String(), err)
		}
		if re.String() != stmt.String() {
			t.Fatalf("unstable round-trip:\n%s\n%s", stmt.String(), re.String())
		}
	}
}

func TestQualifiedProjection(t *testing.T) {
	stmt, err := ParseSelect("SELECT R.a, b FROM R, S WHERE R.k = S.k")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Projections[0].Rel != "R" || stmt.Projections[0].Col != "a" {
		t.Fatalf("qualified projection %v", stmt.Projections[0])
	}
	if stmt.Projections[1].Rel != "" || stmt.Projections[1].Col != "b" {
		t.Fatalf("unqualified projection %v", stmt.Projections[1])
	}
}

func TestConditionString(t *testing.T) {
	stmt, err := ParseSelect("SELECT * FROM R, S WHERE R.a = S.a AND R.c > 10")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Where[0].String(); got != "R.a = S.a" {
		t.Fatalf("join string %q", got)
	}
	if got := stmt.Where[1].String(); !strings.Contains(got, "R.c > 10") {
		t.Fatalf("selection string %q", got)
	}
}
