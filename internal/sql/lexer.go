// Package sql implements the engine's SQL dialect: conjunctive
// select-project-join queries plus the DDL the speculation subsystem needs
// (SELECT … INTO for materialization, CREATE INDEX, CREATE HISTOGRAM,
// DROP TABLE, EXPLAIN). The dialect deliberately matches the query class of
// the paper (Section 2: conjunctive queries).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // = <> != < <= > >=
	tokPunct // ( ) , . *
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer produces tokens from SQL text.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// next returns the next token, or an error for unterminated strings and
// unexpected bytes.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++ // first digit or sign
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		// Optional exponent ([eE][+-]?digits), so FormatFloat's 'g' output
		// (e.g. 1e+06) round-trips. Consumed only when digits actually follow
		// — "1easy" stays a number then an identifier.
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			j := l.pos + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
					j++
				}
				l.pos = j
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			if l.src[l.pos] == '\'' {
				// '' escapes a quote inside the literal.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case c == '<' || c == '>' || c == '=' || c == '!':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if text == "!" {
			return token{}, fmt.Errorf("sql: unexpected %q at offset %d", text, start)
		}
		return token{kind: tokOp, text: text, pos: start}, nil
	case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
