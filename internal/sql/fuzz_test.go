package sql

import (
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus: every statement shape the dialect supports,
// plus the malformed inputs the error-path tests exercise.
var fuzzSeeds = []string{
	// Valid statements.
	"SELECT * FROM t",
	"SELECT name FROM employee WHERE age < 30",
	"SELECT * FROM R, S, W WHERE R.a = S.a AND S.b = W.b AND R.c > 10",
	"SELECT a, b.c FROM b, d WHERE b.x = d.y AND a >= 2.5 AND name = 'bob'",
	"SELECT * FROM R, S WHERE R.a = S.a AND R.c > 10 INTO t1",
	"SELECT * FROM employee WHERE age < 30 INTO TABLE young_employee",
	"SELECT * FROM t WHERE a = -5 AND b >= 2.75 AND c = 'it''s' AND d <> 'x'",
	"select * from t where a = 1 and b = 2",
	"EXPLAIN SELECT * FROM t WHERE a = 1",
	"EXPLAIN ANALYZE SELECT * FROM t WHERE a = 1",
	"CREATE INDEX ON t (a)",
	"CREATE HISTOGRAM ON t (a)",
	"DROP TABLE t",
	// Malformed inputs (must error, not panic).
	"",
	"SELECT",
	"SELECT * FROM",
	"SELECT * FROM t WHERE a =",
	"SELECT * FROM t WHERE a < b.c",
	"SELECT * FROM t WHERE a = 1 OR b = 2",
	"SELECT * FROM t trailing",
	"SELECT * FROM t WHERE a = 'unterminated",
	"SELECT * FROM t WHERE a @ 1",
	"SELECT a. FROM t",
	"SELECT * FROM t INTO",
	"EXPLAIN ANALYZE",
	"EXPLAIN DROP TABLE t",
}

// FuzzParse feeds arbitrary input through the full statement parser. Two
// properties: Parse never panics, and an accepted SELECT re-renders through
// String() into a statement that parses again to the same rendering (the
// String round-trip the optimizer and traces rely on).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			if ex, isEx := stmt.(*ExplainStmt); isEx {
				sel = ex.Query
			} else {
				return
			}
		}
		rendered := sel.String()
		re, err := ParseSelect(rendered)
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", src, rendered, err)
		}
		if got := re.String(); got != rendered {
			t.Fatalf("unstable round-trip for %q:\n first: %s\nsecond: %s", src, rendered, got)
		}
	})
}

// FuzzParseSelect narrows the fuzz to the SELECT entry point used by the
// engine's Exec path, asserting the same no-panic property on inputs with
// leading/trailing noise the statement splitter might hand over.
func FuzzParseSelect(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
		f.Add(" " + s + " ")
		f.Add(strings.ToLower(s))
	}
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := ParseSelect(src)
		if err != nil {
			return
		}
		if _, err := ParseSelect(sel.String()); err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", src, sel.String(), err)
		}
	})
}
