package catalog

import (
	"specdb/internal/stats"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

// Analyze scans a table and recomputes count/distinct/min/max statistics for
// every column. Existing histograms are preserved (they are created by a
// separate, costed manipulation). The scan goes through the buffer pool, so
// analyzing charges real simulated I/O like any other statement.
func Analyze(t *Table) error {
	cols := make([][]tuple.Value, t.Schema.Len())
	err := t.Heap.Scan(func(_ storage.RID, rec []byte) error {
		row, _, err := tuple.DecodeRow(rec, t.Schema)
		if err != nil {
			return err
		}
		for i, v := range row {
			cols[i] = append(cols[i], v)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, c := range t.Schema.Columns {
		cs := stats.CollectColumnStats(cols[i])
		if old := t.ColumnStats(c.Name); old != nil {
			cs.SetHist(old.Hist())
		}
		t.SetColumnStats(c.Name, cs)
	}
	return nil
}

// ColumnValues returns every value of one column, in heap order. It is the
// input to histogram creation and index builds.
func ColumnValues(t *Table, col string) ([]tuple.Value, error) {
	ord := t.Schema.MustOrdinal(col)
	var out []tuple.Value
	err := t.Heap.Scan(func(_ storage.RID, rec []byte) error {
		row, _, err := tuple.DecodeRow(rec, t.Schema)
		if err != nil {
			return err
		}
		out = append(out, row[ord])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
