package catalog

import (
	"testing"

	"specdb/internal/btree"
	"specdb/internal/buffer"
	"specdb/internal/qgraph"
	"specdb/internal/sim"
	"specdb/internal/stats"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

func newTestCatalog() (*Catalog, *storage.DiskManager, *buffer.Pool) {
	disk := storage.NewDiskManager(512)
	pool := buffer.NewPool(disk, 64, sim.NewMeter())
	return New(pool), disk, pool
}

func simpleSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "name", Kind: tuple.KindString},
	)
}

func TestCreateAndLookupTable(t *testing.T) {
	c, _, _ := newTestCatalog()
	tb, err := c.CreateTable("emp", simpleSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tb.RowCount() != 0 || tb.NumPages() != 0 {
		t.Fatal("fresh table not empty")
	}
	got, err := c.Table("emp")
	if err != nil || got != tb {
		t.Fatal("lookup failed")
	}
	if !c.HasTable("emp") || c.HasTable("ghost") {
		t.Fatal("HasTable wrong")
	}
	if _, err := c.Table("ghost"); err == nil {
		t.Fatal("lookup of missing table should fail")
	}
	if _, err := c.CreateTable("emp", simpleSchema()); err == nil {
		t.Fatal("duplicate create should fail")
	}
	names := c.TableNames()
	if len(names) != 1 || names[0] != "emp" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestDropTableFreesEverything(t *testing.T) {
	c, disk, pool := newTestCatalog()
	tb, err := c.CreateTable("emp", simpleSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		rec, err := tuple.EncodeRow(nil, tb.Schema, tuple.Row{tuple.NewInt(i), tuple.NewString("x")})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := btree.New(pool, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := tree.Insert(tuple.EncodeKey(nil, tuple.NewInt(i)), storage.RID{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddIndex("emp", "id", tree); err != nil {
		t.Fatal(err)
	}
	if disk.Allocated() == 0 {
		t.Fatal("nothing allocated")
	}
	if err := c.DropTable("emp"); err != nil {
		t.Fatal(err)
	}
	if disk.Allocated() != 0 {
		t.Fatalf("%d pages leaked after DropTable", disk.Allocated())
	}
	if err := c.DropTable("emp"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestAddIndexValidation(t *testing.T) {
	c, _, pool := newTestCatalog()
	if _, err := c.CreateTable("emp", simpleSchema()); err != nil {
		t.Fatal(err)
	}
	tree, err := btree.New(pool, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddIndex("ghost", "id", tree); err == nil {
		t.Fatal("index on missing table should fail")
	}
	if _, err := c.AddIndex("emp", "ghost", tree); err == nil {
		t.Fatal("index on missing column should fail")
	}
	idx, err := c.AddIndex("emp", "id", tree)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name != "idx_emp_id" {
		t.Fatalf("index name %q", idx.Name)
	}
	tb, _ := c.Table("emp")
	if tb.Index("id") != idx || tb.Index("name") != nil {
		t.Fatal("Index lookup wrong")
	}
	if _, err := c.AddIndex("emp", "id", tree); err == nil {
		t.Fatal("duplicate index should fail")
	}
}

func TestViewRegistryAndMatching(t *testing.T) {
	c, _, _ := newTestCatalog()
	if _, err := c.CreateTable("v1", simpleSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("v2", simpleSchema()); err != nil {
		t.Fatal(err)
	}

	selR := qgraph.Selection{Rel: "R", Col: "c", Op: tuple.CmpGT, Const: tuple.NewInt(10)}
	g1 := qgraph.SelectionSubgraph(selR) // σ(R)
	g2 := qgraph.New()                   // R ⋈ S
	g2.AddJoin(qgraph.NewJoin("R", "a", "S", "a"))

	if err := c.RegisterView("v1", g1, false); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterView("v2", g2, true); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterView("ghost", g1, false); err == nil {
		t.Fatal("view without backing table should fail")
	}

	// Query σ(R) ⋈ S contains both views.
	q := g1.Union(g2)
	matches := c.MatchingViews(q)
	if len(matches) != 2 {
		t.Fatalf("MatchingViews = %d, want 2", len(matches))
	}
	// Query over only S matches neither.
	qs := qgraph.New()
	qs.AddRelation("S")
	if got := c.MatchingViews(qs); len(got) != 0 {
		t.Fatalf("MatchingViews(S) = %d, want 0", len(got))
	}

	if v := c.ViewByGraph(g2); v == nil || v.Name != "v2" || !v.Forced {
		t.Fatalf("ViewByGraph = %+v", v)
	}
	if v := c.ViewByGraph(qs); v != nil {
		t.Fatal("ViewByGraph on unknown graph should be nil")
	}

	// Dropping the backing table unregisters the view.
	if err := c.DropTable("v1"); err != nil {
		t.Fatal(err)
	}
	if c.View("v1") != nil {
		t.Fatal("view survived table drop")
	}
	c.DropView("v2")
	if len(c.Views()) != 0 {
		t.Fatal("DropView left views behind")
	}
}

func TestViewColumnNaming(t *testing.T) {
	if got := ViewColumn("lineitem", "l_price"); got != "lineitem.l_price" {
		t.Fatalf("ViewColumn = %q", got)
	}
}

func TestAnalyzeAndColumnValues(t *testing.T) {
	c, _, _ := newTestCatalog()
	tb, err := c.CreateTable("emp", simpleSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		rec, err := tuple.EncodeRow(nil, tb.Schema, tuple.Row{
			tuple.NewInt(i % 10), tuple.NewString("n"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := Analyze(tb); err != nil {
		t.Fatal(err)
	}
	cs := tb.ColumnStats("id")
	if cs == nil || cs.Count != 40 || cs.Distinct != 10 {
		t.Fatalf("stats %+v", cs)
	}
	if cs.Min.I != 0 || cs.Max.I != 9 {
		t.Fatalf("range [%v,%v]", cs.Min, cs.Max)
	}
	vals, err := ColumnValues(tb, "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 40 || vals[0].I != 0 {
		t.Fatalf("values %d", len(vals))
	}
	// Analyze preserves an existing histogram.
	h := &stats.Histogram{Total: 1}
	tb.ColumnStats("id").SetHist(h)
	if err := Analyze(tb); err != nil {
		t.Fatal(err)
	}
	if tb.ColumnStats("id").Hist() != h {
		t.Fatal("Analyze dropped the histogram")
	}
}

func TestColumnStatsLookupEdgeCases(t *testing.T) {
	c, _, _ := newTestCatalog()
	tb, err := c.CreateTable("emp", simpleSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tb.ColumnStats("ghost") != nil {
		t.Fatal("missing column should have nil stats")
	}
	if tb.ColumnStats("id") != nil {
		t.Fatal("unanalyzed column should have nil stats")
	}
	if tb.Index("id") != nil {
		t.Fatal("unindexed column should yield nil")
	}
	// The nil-stats path must extend through histogram access.
	if tb.ColumnStats("ghost").Hist() != nil {
		t.Fatal("nil ColumnStats should yield nil histogram")
	}
}
