// Package catalog is the engine's metadata layer: tables with their heap
// files, secondary indexes, column statistics, and materialized views tagged
// with the query graph they materialize. The speculation subsystem's whole
// output — materializations, indexes, histograms — lands here.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"specdb/internal/btree"
	"specdb/internal/qgraph"
	"specdb/internal/stats"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

// Index is a secondary index over one column of one table.
type Index struct {
	Name   string
	Table  string
	Column string
	Tree   *btree.BTree
}

// Table is a base or materialized relation. Name/Schema/Heap are fixed at
// creation; the statistics and index maps are mutated by speculative
// manipulations — possibly issued by a different session than the one
// planning a query over the table — so they live behind a per-table RWMutex.
type Table struct {
	Name   string
	Schema *tuple.Schema
	Heap   *storage.HeapFile

	mu sync.RWMutex
	// stats maps column name → statistics. Populated by Analyze; histogram
	// pointers are added by histogram-creation manipulations.
	stats map[string]*stats.ColumnStats
	// indexes maps column name → index.
	indexes map[string]*Index
}

// RowCount reports the table cardinality.
func (t *Table) RowCount() int64 { return t.Heap.NumRows() }

// NumPages reports the heap size in pages.
func (t *Table) NumPages() int { return t.Heap.NumPages() }

// ColumnStats returns statistics for col, or nil if not analyzed.
func (t *Table) ColumnStats(col string) *stats.ColumnStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats[col]
}

// SetColumnStats installs (replacing any previous) statistics for col.
func (t *Table) SetColumnStats(col string, cs *stats.ColumnStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats[col] = cs
}

// Index returns the index on col, or nil.
func (t *Table) Index(col string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[col]
}

// SetIndex registers idx as the index on col, replacing any previous entry.
func (t *Table) SetIndex(col string, idx *Index) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.indexes[col] = idx
}

// RemoveIndex unregisters the index on col without dropping its tree (the
// caller owns tree disposal).
func (t *Table) RemoveIndex(col string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.indexes, col)
}

// IndexList returns the table's indexes sorted by column name.
func (t *Table) IndexList() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cols := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	out := make([]*Index, len(cols))
	for i, c := range cols {
		out[i] = t.indexes[c]
	}
	return out
}

// MatView records that table Name holds the materialized result of Graph.
// View columns are named "rel.col" for every column of every relation in the
// graph (the engine materializes SELECT * over the sub-query).
type MatView struct {
	Name  string
	Graph *qgraph.Graph
	// Forced marks query-rewriting semantics (Section 3.2): the optimizer
	// MUST use the view for any query containing Graph, rather than merely
	// considering it.
	Forced bool
}

// Catalog holds all metadata. An internal RWMutex guards the table and view
// maps so concurrent sessions can create, drop, and resolve relations safely;
// per-table state is additionally guarded by each Table's own lock.
type Catalog struct {
	pool storage.PagePool

	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*MatView // by view (backing table) name
}

// New returns an empty catalog creating storage through pool.
func New(pool storage.PagePool) *Catalog {
	return &Catalog{
		pool:   pool,
		tables: make(map[string]*Table),
		views:  make(map[string]*MatView),
	}
}

// CreateTable registers a new empty table.
func (c *Catalog) CreateTable(name string, schema *tuple.Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Name:    name,
		Schema:  schema,
		Heap:    storage.NewHeapFile(c.pool),
		stats:   make(map[string]*stats.ColumnStats),
		indexes: make(map[string]*Index),
	}
	c.tables[name] = t
	return t, nil
}

// RestoreTable registers a table around an already-populated heap file —
// the recovery path, where a durable backend rehydrated the heap from its
// persisted page list instead of creating an empty one.
func (c *Catalog) RestoreTable(name string, schema *tuple.Schema, heap *storage.HeapFile) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Name:    name,
		Schema:  schema,
		Heap:    heap,
		stats:   make(map[string]*stats.ColumnStats),
		indexes: make(map[string]*Index),
	}
	c.tables[name] = t
	return t, nil
}

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// HasTable reports whether name exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[name]
	return ok
}

// TableNames returns all table names sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropTable removes a table, freeing its heap pages and index pages, and
// unregistering any materialized view backed by it.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("catalog: drop of unknown table %q", name)
	}
	for _, idx := range t.IndexList() {
		if err := idx.Tree.Drop(); err != nil {
			return err
		}
	}
	if err := t.Heap.Drop(); err != nil {
		return err
	}
	delete(c.tables, name)
	delete(c.views, name)
	return nil
}

// AddIndex registers a built index on table.column. One index per column.
func (c *Catalog) AddIndex(table, column string, tree *btree.BTree) (*Index, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	if t.Schema.Ordinal(column) < 0 {
		return nil, fmt.Errorf("catalog: table %q has no column %q", table, column)
	}
	idx := &Index{
		Name:   fmt.Sprintf("idx_%s_%s", table, column),
		Table:  table,
		Column: column,
		Tree:   tree,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.indexes[column]; exists {
		return nil, fmt.Errorf("catalog: index on %s.%s already exists", table, column)
	}
	t.indexes[column] = idx
	return idx, nil
}

// RegisterView records that table name materializes graph.
func (c *Catalog) RegisterView(name string, graph *qgraph.Graph, forced bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: view %q has no backing table", name)
	}
	c.views[name] = &MatView{Name: name, Graph: graph, Forced: forced}
	return nil
}

// DropView unregisters a view without touching the backing table (callers
// usually DropTable right after, which also unregisters).
func (c *Catalog) DropView(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.views, name)
}

// View returns the view backed by table name, or nil.
func (c *Catalog) View(name string) *MatView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.views[name]
}

// Views returns all registered views sorted by name.
func (c *Catalog) Views() []*MatView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.views))
	for n := range c.views {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*MatView, len(names))
	for i, n := range names {
		out[i] = c.views[n]
	}
	return out
}

// MatchingViews returns the views whose graph is contained in query — the
// candidates for rewriting (paper Section 3.2: "the optimizer is able to use
// it in any final query whose graph contains the materialized query as a
// sub-graph"). Sorted by view name for determinism.
func (c *Catalog) MatchingViews(query *qgraph.Graph) []*MatView {
	var out []*MatView
	for _, v := range c.Views() {
		if query.Contains(v.Graph) {
			out = append(out, v)
		}
	}
	return out
}

// ViewByGraph returns a view materializing exactly graph, or nil.
func (c *Catalog) ViewByGraph(graph *qgraph.Graph) *MatView {
	key := graph.Key()
	for _, v := range c.Views() {
		if v.Graph.Key() == key {
			return v
		}
	}
	return nil
}

// ViewColumn is the naming convention mapping a base column to its name in a
// materialized view's schema.
func ViewColumn(rel, col string) string { return rel + "." + col }
