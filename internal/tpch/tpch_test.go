package tpch

import (
	"testing"

	"specdb/internal/engine"
	"specdb/internal/qgraph"
	"specdb/internal/tuple"
)

func loadSmall(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{BufferPoolPages: 256})
	if err := Load(e, Scale100MB, 42); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestScaleProportions(t *testing.T) {
	s := Scale1GB
	if s.LineItem <= s.Orders || s.Orders <= s.Customer {
		t.Fatalf("TPC-H proportions broken: %+v", s)
	}
	if Scale1GB.LineItem <= Scale500MB.LineItem || Scale500MB.LineItem <= Scale100MB.LineItem {
		t.Fatal("scales not increasing")
	}
	if _, err := ScaleByName("100MB"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScaleByName("2TB"); err == nil {
		t.Fatal("unknown scale should fail")
	}
	if Scale100MB.TotalRows() == 0 {
		t.Fatal("zero rows")
	}
}

func TestLoadPopulatesAllTables(t *testing.T) {
	e := loadSmall(t)
	for name, wantRows := range map[string]int{
		"supplier": Scale100MB.Supplier,
		"part":     Scale100MB.Part,
		"partsupp": Scale100MB.PartSupp,
		"customer": Scale100MB.Customer,
		"orders":   Scale100MB.Orders,
		"lineitem": Scale100MB.LineItem,
	} {
		tb, err := e.Catalog.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if int(tb.RowCount()) != wantRows {
			t.Fatalf("%s has %d rows, want %d", name, tb.RowCount(), wantRows)
		}
		// Analyzed.
		first := tb.Schema.Columns[0].Name
		if tb.ColumnStats(first) == nil {
			t.Fatalf("%s not analyzed", name)
		}
	}
}

func TestLoadPreparesIndexesAndHistograms(t *testing.T) {
	e := loadSmall(t)
	li, _ := e.Catalog.Table("lineitem")
	for _, col := range []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_shipdate"} {
		if li.Index(col) == nil {
			t.Fatalf("missing index on lineitem.%s", col)
		}
	}
	if li.ColumnStats("l_quantity").Hist() == nil {
		t.Fatal("missing histogram on lineitem.l_quantity")
	}
	ord, _ := e.Catalog.Table("orders")
	if ord.ColumnStats("o_totalprice").Hist() == nil {
		t.Fatal("missing histogram on orders.o_totalprice")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	e := loadSmall(t)
	// Every lineitem.l_orderkey must exist in orders (FK integrity), checked
	// through the engine itself with an anti-join style count.
	res, err := e.Exec("SELECT * FROM orders, lineitem WHERE orders.o_orderkey = lineitem.l_orderkey")
	if err != nil {
		t.Fatal(err)
	}
	li, _ := e.Catalog.Table("lineitem")
	if res.RowCount != li.RowCount() {
		t.Fatalf("FK join produced %d rows, want %d (every lineitem matches exactly one order)",
			res.RowCount, li.RowCount())
	}
}

func TestSkewIsPresent(t *testing.T) {
	e := loadSmall(t)
	// l_quantity is Zipf: quantity 1 must be far more common than 1/50.
	res, err := e.Exec("SELECT * FROM lineitem WHERE lineitem.l_quantity = 1")
	if err != nil {
		t.Fatal(err)
	}
	li, _ := e.Catalog.Table("lineitem")
	frac := float64(res.RowCount) / float64(li.RowCount())
	if frac < 0.10 {
		t.Fatalf("quantity=1 fraction %.3f; expected heavy skew (>0.10)", frac)
	}
}

func TestJoinEdgesAreValid(t *testing.T) {
	e := loadSmall(t)
	for _, j := range JoinEdges() {
		g := qgraph.New()
		g.AddJoin(j)
		if _, err := e.PlanGraph(g); err != nil {
			t.Fatalf("join edge %v does not plan: %v", j, err)
		}
	}
}

func TestSelectionColumnsAreValid(t *testing.T) {
	e := loadSmall(t)
	for _, sc := range SelectionColumns() {
		var c tuple.Value
		switch sc.Kind {
		case tuple.KindInt:
			c = tuple.NewInt(int64(sc.Min))
		case tuple.KindFloat:
			c = tuple.NewFloat(sc.Min)
		case tuple.KindDate:
			c = tuple.NewDate(int64(sc.Min))
		}
		g := qgraph.SelectionSubgraph(qgraph.Selection{
			Rel: sc.Table, Col: sc.Column, Op: tuple.CmpGE, Const: c,
		})
		if _, err := e.PlanGraph(g); err != nil {
			t.Fatalf("selection column %s.%s does not plan: %v", sc.Table, sc.Column, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	e1 := engine.New(engine.Config{BufferPoolPages: 256})
	e2 := engine.New(engine.Config{BufferPoolPages: 256})
	tiny := NewScale("tiny", 0.001)
	if err := Load(e1, tiny, 7); err != nil {
		t.Fatal(err)
	}
	if err := Load(e2, tiny, 7); err != nil {
		t.Fatal(err)
	}
	q := "SELECT * FROM lineitem WHERE lineitem.l_quantity < 5"
	r1, err := e1.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RowCount != r2.RowCount {
		t.Fatalf("same seed, different data: %d vs %d", r1.RowCount, r2.RowCount)
	}
	// Different seed should (overwhelmingly) differ.
	e3 := engine.New(engine.Config{BufferPoolPages: 256})
	if err := Load(e3, tiny, 8); err != nil {
		t.Fatal(err)
	}
	r3, err := e3.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RowCount == r3.RowCount {
		t.Logf("seeds 7 and 8 coincide on this query (possible but unlikely)")
	}
}
