// Package tpch generates the paper's experimental dataset: a subset of the
// TPC-H schema — part, supplier, partsupp, customer, orders, lineitem —
// "mutually connected through various foreign keys … populated with data of
// varying size … and of high skew in fields that were likely to appear in
// selections" (Section 4.2). It also performs the paper's database
// preparation: indexes and histograms on all skewed fields and foreign-key
// fields.
//
// Data is generated at 1/20 linear scale relative to the paper's 100 MB /
// 500 MB / 1 GB datasets, with the buffer pool scaled by the same factor
// (see DESIGN.md §1), and is fully deterministic given a seed.
package tpch

import (
	"fmt"
	"math"

	"specdb/internal/engine"
	"specdb/internal/qgraph"
	"specdb/internal/sim"
	"specdb/internal/tuple"
)

// Scale sizes a dataset. Row counts follow TPC-H proportions.
type Scale struct {
	Name     string
	Supplier int
	Part     int
	PartSupp int
	Customer int
	Orders   int
	LineItem int
}

// NewScale derives a Scale from a TPC-H scale factor (SF 1 ≈ the paper's
// 1 GB dataset before our 1/20 reduction).
func NewScale(name string, sf float64) Scale {
	n := func(base int) int {
		v := int(float64(base) * sf)
		if v < 4 {
			v = 4
		}
		return v
	}
	return Scale{
		Name:     name,
		Supplier: n(10_000),
		Part:     n(200_000),
		PartSupp: n(800_000),
		Customer: n(150_000),
		Orders:   n(1_500_000),
		LineItem: n(6_000_000),
	}
}

// The paper's three dataset sizes at the repository's 1/20 linear scale.
var (
	Scale100MB = NewScale("100MB", 0.1/20)
	Scale500MB = NewScale("500MB", 0.5/20)
	Scale1GB   = NewScale("1GB", 1.0/20)
)

// ScaleByName resolves one of the paper's dataset names.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "100MB":
		return Scale100MB, nil
	case "500MB":
		return Scale500MB, nil
	case "1GB":
		return Scale1GB, nil
	default:
		return Scale{}, fmt.Errorf("tpch: unknown scale %q (want 100MB, 500MB, or 1GB)", name)
	}
}

// TotalRows reports the dataset cardinality.
func (s Scale) TotalRows() int {
	return s.Supplier + s.Part + s.PartSupp + s.Customer + s.Orders + s.LineItem
}

var nations = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "CHINA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
	"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "ROMANIA", "RUSSIA",
	"SAUDI ARABIA", "UNITED KINGDOM", "UNITED STATES", "VIETNAM",
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

var brands = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31",
	"Brand#32", "Brand#41", "Brand#42", "Brand#51", "Brand#52"}

// Schemas returns the six table schemas, keyed by table name.
func Schemas() map[string]*tuple.Schema {
	return map[string]*tuple.Schema{
		"supplier": tuple.NewSchema(
			tuple.Column{Name: "s_suppkey", Kind: tuple.KindInt},
			tuple.Column{Name: "s_name", Kind: tuple.KindString},
			tuple.Column{Name: "s_nation", Kind: tuple.KindString},
			tuple.Column{Name: "s_acctbal", Kind: tuple.KindFloat},
		),
		"part": tuple.NewSchema(
			tuple.Column{Name: "p_partkey", Kind: tuple.KindInt},
			tuple.Column{Name: "p_name", Kind: tuple.KindString},
			tuple.Column{Name: "p_brand", Kind: tuple.KindString},
			tuple.Column{Name: "p_size", Kind: tuple.KindInt},
			tuple.Column{Name: "p_retailprice", Kind: tuple.KindFloat},
		),
		"partsupp": tuple.NewSchema(
			tuple.Column{Name: "ps_partkey", Kind: tuple.KindInt},
			tuple.Column{Name: "ps_suppkey", Kind: tuple.KindInt},
			tuple.Column{Name: "ps_availqty", Kind: tuple.KindInt},
			tuple.Column{Name: "ps_supplycost", Kind: tuple.KindFloat},
		),
		"customer": tuple.NewSchema(
			tuple.Column{Name: "c_custkey", Kind: tuple.KindInt},
			tuple.Column{Name: "c_name", Kind: tuple.KindString},
			tuple.Column{Name: "c_nation", Kind: tuple.KindString},
			tuple.Column{Name: "c_mktsegment", Kind: tuple.KindString},
			tuple.Column{Name: "c_acctbal", Kind: tuple.KindFloat},
		),
		"orders": tuple.NewSchema(
			tuple.Column{Name: "o_orderkey", Kind: tuple.KindInt},
			tuple.Column{Name: "o_custkey", Kind: tuple.KindInt},
			tuple.Column{Name: "o_totalprice", Kind: tuple.KindFloat},
			tuple.Column{Name: "o_orderdate", Kind: tuple.KindDate},
			tuple.Column{Name: "o_orderpriority", Kind: tuple.KindInt},
		),
		"lineitem": tuple.NewSchema(
			tuple.Column{Name: "l_orderkey", Kind: tuple.KindInt},
			tuple.Column{Name: "l_partkey", Kind: tuple.KindInt},
			tuple.Column{Name: "l_suppkey", Kind: tuple.KindInt},
			tuple.Column{Name: "l_quantity", Kind: tuple.KindInt},
			tuple.Column{Name: "l_extendedprice", Kind: tuple.KindFloat},
			tuple.Column{Name: "l_discount", Kind: tuple.KindFloat},
			tuple.Column{Name: "l_shipdate", Kind: tuple.KindDate},
		),
	}
}

// JoinEdges returns the foreign-key join edges of the schema — the join
// vocabulary for user queries.
func JoinEdges() []qgraph.Join {
	return []qgraph.Join{
		qgraph.NewJoin("customer", "c_custkey", "orders", "o_custkey"),
		qgraph.NewJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
		qgraph.NewJoin("part", "p_partkey", "lineitem", "l_partkey"),
		qgraph.NewJoin("supplier", "s_suppkey", "lineitem", "l_suppkey"),
		qgraph.NewJoin("part", "p_partkey", "partsupp", "ps_partkey"),
		qgraph.NewJoin("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
	}
}

// fkColumns lists the foreign-key columns indexed at load time.
var fkColumns = [][2]string{
	{"orders", "o_custkey"},
	{"lineitem", "l_orderkey"},
	{"lineitem", "l_partkey"},
	{"lineitem", "l_suppkey"},
	{"partsupp", "ps_partkey"},
	{"partsupp", "ps_suppkey"},
	{"customer", "c_custkey"},
	{"orders", "o_orderkey"},
	{"part", "p_partkey"},
	{"supplier", "s_suppkey"},
}

// skewedColumns lists the skewed numeric fields that receive indexes and
// histograms (the paper prepares the base database fully).
var skewedColumns = [][2]string{
	{"part", "p_size"},
	{"part", "p_retailprice"},
	{"supplier", "s_acctbal"},
	{"partsupp", "ps_availqty"},
	{"partsupp", "ps_supplycost"},
	{"customer", "c_acctbal"},
	{"orders", "o_totalprice"},
	{"orders", "o_orderdate"},
	{"orders", "o_orderpriority"},
	{"lineitem", "l_quantity"},
	{"lineitem", "l_extendedprice"},
	{"lineitem", "l_discount"},
	{"lineitem", "l_shipdate"},
}

// SelectionColumn describes a column users place selection predicates on,
// with its value range for constant generation.
type SelectionColumn struct {
	Table, Column string
	Kind          tuple.Kind
	Min, Max      float64 // numeric range (dates as day numbers)
	// Skew is the approximate power-law exponent of the generated data on
	// this column (1 = uniform); see trace.SelectionTemplate.Skew.
	Skew float64
}

// SelectionColumns returns the selection vocabulary for the synthetic user
// model, matching the skewed numeric fields.
func SelectionColumns() []SelectionColumn {
	return []SelectionColumn{
		{"part", "p_size", tuple.KindInt, 1, 50, 3},
		{"part", "p_retailprice", tuple.KindFloat, 900, 2100, 1.5},
		{"supplier", "s_acctbal", tuple.KindFloat, -900, 10000, 2},
		{"partsupp", "ps_availqty", tuple.KindInt, 1, 10000, 1},
		{"partsupp", "ps_supplycost", tuple.KindFloat, 1, 1000, 2},
		{"customer", "c_acctbal", tuple.KindFloat, -900, 10000, 2},
		{"orders", "o_totalprice", tuple.KindFloat, 1000, 400000, 2.5},
		{"orders", "o_orderdate", tuple.KindDate, 8035, 10590, 1}, // 1992-01-01..1998-12-31
		{"orders", "o_orderpriority", tuple.KindInt, 1, 5, 3},
		{"lineitem", "l_quantity", tuple.KindInt, 1, 50, 3},
		{"lineitem", "l_extendedprice", tuple.KindFloat, 900, 105000, 2},
		{"lineitem", "l_discount", tuple.KindFloat, 0, 0.1, 1},
		{"lineitem", "l_shipdate", tuple.KindDate, 8035, 10712, 1},
	}
}

// Load creates, populates, analyzes, indexes, and histograms the dataset in
// the engine, deterministically from seed.
func Load(e *engine.Engine, scale Scale, seed uint64) error {
	r := sim.NewRand(seed)
	schemas := Schemas()
	for _, name := range []string{"supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
		if _, err := e.CreateTable(name, schemas[name]); err != nil {
			return err
		}
	}
	if err := loadSupplier(e, scale, r); err != nil {
		return err
	}
	if err := loadPart(e, scale, r); err != nil {
		return err
	}
	if err := loadPartSupp(e, scale, r); err != nil {
		return err
	}
	if err := loadCustomer(e, scale, r); err != nil {
		return err
	}
	if err := loadOrders(e, scale, r); err != nil {
		return err
	}
	if err := loadLineItem(e, scale, r); err != nil {
		return err
	}
	for _, name := range []string{"supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
		if err := e.Analyze(name); err != nil {
			return err
		}
	}
	// Full preparation: indexes on FK and skewed fields, histograms on
	// skewed fields (Section 4.2).
	done := map[string]bool{}
	for _, tc := range append(append([][2]string{}, fkColumns...), skewedColumns...) {
		key := tc[0] + "." + tc[1]
		if done[key] {
			continue
		}
		done[key] = true
		if _, err := e.CreateIndex(tc[0], tc[1]); err != nil {
			return fmt.Errorf("tpch: index %s: %w", key, err)
		}
	}
	for _, tc := range skewedColumns {
		if _, err := e.CreateHistogram(tc[0], tc[1]); err != nil {
			return fmt.Errorf("tpch: histogram %s.%s: %w", tc[0], tc[1], err)
		}
	}
	return e.ColdStart() // experiments start with a cold buffer pool
}

func loadSupplier(e *engine.Engine, s Scale, r *sim.Rand) error {
	zNation := sim.NewZipf(r, len(nations), 1.1)
	rows := make([]tuple.Row, s.Supplier)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.NewInt(int64(i + 1)),
			tuple.NewString(fmt.Sprintf("Supplier#%05d", i+1)),
			tuple.NewString(nations[zNation.Next()]),
			tuple.NewFloat(skewedFloat(r, -900, 10000, 2)),
		}
	}
	return e.InsertRows("supplier", rows)
}

func loadPart(e *engine.Engine, s Scale, r *sim.Rand) error {
	zSize := sim.NewZipf(r, 50, 1.0)
	zBrand := sim.NewZipf(r, len(brands), 0.9)
	rows := make([]tuple.Row, s.Part)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.NewInt(int64(i + 1)),
			tuple.NewString(fmt.Sprintf("Part#%06d", i+1)),
			tuple.NewString(brands[zBrand.Next()]),
			tuple.NewInt(int64(zSize.Next() + 1)),
			tuple.NewFloat(skewedFloat(r, 900, 2100, 1.5)),
		}
	}
	return e.InsertRows("part", rows)
}

func loadPartSupp(e *engine.Engine, s Scale, r *sim.Rand) error {
	rows := make([]tuple.Row, s.PartSupp)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.NewInt(r.Int63n(int64(s.Part)) + 1),
			tuple.NewInt(r.Int63n(int64(s.Supplier)) + 1),
			tuple.NewInt(r.Int63n(10000) + 1),
			tuple.NewFloat(skewedFloat(r, 1, 1000, 2)),
		}
	}
	return e.InsertRows("partsupp", rows)
}

func loadCustomer(e *engine.Engine, s Scale, r *sim.Rand) error {
	zNation := sim.NewZipf(r, len(nations), 1.1)
	zSeg := sim.NewZipf(r, len(segments), 0.8)
	rows := make([]tuple.Row, s.Customer)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.NewInt(int64(i + 1)),
			tuple.NewString(fmt.Sprintf("Customer#%06d", i+1)),
			tuple.NewString(nations[zNation.Next()]),
			tuple.NewString(segments[zSeg.Next()]),
			tuple.NewFloat(skewedFloat(r, -900, 10000, 2)),
		}
	}
	return e.InsertRows("customer", rows)
}

func loadOrders(e *engine.Engine, s Scale, r *sim.Rand) error {
	zPrio := sim.NewZipf(r, 5, 1.3)
	rows := make([]tuple.Row, s.Orders)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.NewInt(int64(i + 1)),
			tuple.NewInt(r.Int63n(int64(s.Customer)) + 1),
			tuple.NewFloat(skewedFloat(r, 1000, 400000, 2.5)),
			tuple.NewDate(8035 + r.Int63n(2556)), // 1992..1998
			tuple.NewInt(int64(zPrio.Next() + 1)),
		}
	}
	return e.InsertRows("orders", rows)
}

func loadLineItem(e *engine.Engine, s Scale, r *sim.Rand) error {
	zQty := sim.NewZipf(r, 50, 1.0)
	rows := make([]tuple.Row, s.LineItem)
	for i := range rows {
		qty := int64(zQty.Next() + 1)
		price := skewedFloat(r, 900, 2100, 1.5) * float64(qty)
		rows[i] = tuple.Row{
			tuple.NewInt(r.Int63n(int64(s.Orders)) + 1),
			tuple.NewInt(r.Int63n(int64(s.Part)) + 1),
			tuple.NewInt(r.Int63n(int64(s.Supplier)) + 1),
			tuple.NewInt(qty),
			tuple.NewFloat(price),
			tuple.NewFloat(float64(r.Intn(11)) / 100),
			tuple.NewDate(8035 + r.Int63n(2678)),
		}
	}
	return e.InsertRows("lineitem", rows)
}

// skewedFloat draws a right-skewed value in [min, max]: mass concentrates
// near min, with a long tail toward max (value = min + range·u^k for
// uniform u and exponent k ≥ 1).
func skewedFloat(r *sim.Rand, min, max, k float64) float64 {
	return min + (max-min)*math.Pow(r.Float64(), k)
}
