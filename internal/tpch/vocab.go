package tpch

import (
	"specdb/internal/qgraph"
	"specdb/internal/trace"
)

// Vocabulary builds the synthetic user model's schema knowledge from the
// TPC-H subset: its relations, FK join edges, and selectable skewed columns.
func Vocabulary() *trace.Vocabulary {
	v := &trace.Vocabulary{
		Relations: []string{"customer", "lineitem", "orders", "part", "partsupp", "supplier"},
		Joins:     JoinEdges(),
		// Growth follows the FK spine; the supplier–partsupp edge is added
		// by closure whenever both relations are present (see
		// trace.Vocabulary.GrowthJoins).
		GrowthJoins: []qgraph.Join{
			qgraph.NewJoin("customer", "c_custkey", "orders", "o_custkey"),
			qgraph.NewJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			qgraph.NewJoin("part", "p_partkey", "lineitem", "l_partkey"),
			qgraph.NewJoin("supplier", "s_suppkey", "lineitem", "l_suppkey"),
			qgraph.NewJoin("part", "p_partkey", "partsupp", "ps_partkey"),
		},
	}
	for _, sc := range SelectionColumns() {
		v.Selections = append(v.Selections, trace.SelectionTemplate{
			Rel:  sc.Table,
			Col:  sc.Column,
			Kind: sc.Kind,
			Min:  sc.Min,
			Max:  sc.Max,
			Skew: sc.Skew,
		})
	}
	return v
}
