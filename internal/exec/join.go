package exec

import (
	"fmt"

	"specdb/internal/btree"
	"specdb/internal/catalog"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

// HashJoin is an in-memory equi-join: the left child is built into a hash
// table at Open, the right child probes it. The planner puts the smaller
// estimated side on the left.
type HashJoin struct {
	ctx         *Context
	left, right Iterator
	leftOrd     int
	rightOrd    int
	schema      *tuple.Schema

	table      map[string][]tuple.Row
	emptyBuild bool
	// spill accounting (see Context.WorkMemBytes): when the build side
	// exceeds work memory, both sides are partitioned through disk.
	spilled    bool
	spillBytes int64
	// probe state: current right row and its pending matches
	pending []tuple.Row
	current tuple.Row
	keyBuf  []byte
}

// NewHashJoin joins left and right on leftCol = rightCol (names resolved in
// each child's schema). Join columns must have the same kind; the planner's
// binder guarantees this, and it matters because hash keys are compared as
// encoded bytes.
func NewHashJoin(ctx *Context, left, right Iterator, leftCol, rightCol string) (*HashJoin, error) {
	lo := left.Schema().Ordinal(leftCol)
	if lo < 0 {
		return nil, fmt.Errorf("exec: hash join: no column %q on build side", leftCol)
	}
	ro := right.Schema().Ordinal(rightCol)
	if ro < 0 {
		return nil, fmt.Errorf("exec: hash join: no column %q on probe side", rightCol)
	}
	lk := left.Schema().Columns[lo].Kind
	rk := right.Schema().Columns[ro].Kind
	if lk != rk {
		return nil, fmt.Errorf("exec: hash join kind mismatch: %v vs %v", lk, rk)
	}
	return &HashJoin{
		ctx:      ctx,
		left:     left,
		right:    right,
		leftOrd:  lo,
		rightOrd: ro,
		schema:   left.Schema().Concat(right.Schema()),
	}, nil
}

// Open builds the hash table from the left child.
func (j *HashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	j.table = make(map[string][]tuple.Row)
	leftSchema := j.left.Schema()
	var buildBytes int64
	for {
		row, ok, err := j.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.keyBuf = tuple.EncodeKey(j.keyBuf[:0], row[j.leftOrd])
		j.table[string(j.keyBuf)] = append(j.table[string(j.keyBuf)], row.Clone())
		j.ctx.Meter.ChargeTuples(1)
		buildBytes += int64(tuple.EncodedSize(leftSchema, row))
	}
	if err := j.left.Close(); err != nil {
		return err
	}
	if j.ctx.WorkMemBytes > 0 && buildBytes > j.ctx.WorkMemBytes {
		// GRACE-style spill: the build side is written out as partitions
		// and read back; the probe side pays the same toll as it streams
		// (charged incrementally in Next).
		j.spilled = true
		pages := buildBytes/pageSizeForSpill + 1
		j.ctx.Meter.ChargePageWrite(pages)
		j.ctx.Meter.ChargePageRead(pages)
	}
	if len(j.table) == 0 {
		// Empty build side: no row can match; skip scanning the probe side
		// entirely (it may be a large forced materialization).
		j.emptyBuild = true
		return nil
	}
	return j.right.Open()
}

// Next emits the next (left ++ right) match.
func (j *HashJoin) Next() (tuple.Row, bool, error) {
	if j.emptyBuild {
		return nil, false, nil
	}
	for {
		if len(j.pending) > 0 {
			l := j.pending[0]
			j.pending = j.pending[1:]
			j.ctx.Meter.ChargeTuples(1)
			return l.Concat(j.current), true, nil
		}
		row, ok, err := j.right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.ctx.Meter.ChargeTuples(1)
		if j.spilled {
			j.spillBytes += int64(tuple.EncodedSize(j.right.Schema(), row))
			for j.spillBytes >= pageSizeForSpill {
				j.spillBytes -= pageSizeForSpill
				j.ctx.Meter.ChargePageWrite(1)
				j.ctx.Meter.ChargePageRead(1)
			}
		}
		j.keyBuf = tuple.EncodeKey(j.keyBuf[:0], row[j.rightOrd])
		matches := j.table[string(j.keyBuf)]
		if len(matches) == 0 {
			continue
		}
		j.current = row.Clone()
		j.pending = matches
	}
}

// pageSizeForSpill is the unit for spill I/O accounting.
const pageSizeForSpill = 8192

// Close closes both children and releases the hash table.
func (j *HashJoin) Close() error {
	j.table = nil
	j.pending = nil
	j.emptyBuild = false
	j.spilled = false
	j.spillBytes = 0
	err := j.left.Close()
	if rerr := j.right.Close(); err == nil {
		err = rerr
	}
	return err
}

// Schema is left ++ right.
func (j *HashJoin) Schema() *tuple.Schema { return j.schema }

// IndexNLJoin drives the outer child and, for each outer row, probes an index
// on the inner base table — the access path whose absence on freshly
// materialized relations is the paper's main source of speculation penalties
// (Section 6.1).
type IndexNLJoin struct {
	ctx      *Context
	outer    Iterator
	outerOrd int
	inner    *catalog.Table
	index    *catalog.Index
	// innerPreds filter inner rows (selections on the inner relation),
	// compiled against the inner's qualified schema.
	innerPreds  []Pred
	innerSchema *tuple.Schema
	schema      *tuple.Schema

	current tuple.Row
	pending []tuple.Row
	keyBuf  []byte
}

// NewIndexNLJoin joins outer to inner on outerCol = index.Column.
func NewIndexNLJoin(ctx *Context, outer Iterator, outerCol string, inner *catalog.Table, index *catalog.Index, qualifier string, innerPreds []Pred) (*IndexNLJoin, error) {
	oo := outer.Schema().Ordinal(outerCol)
	if oo < 0 {
		return nil, fmt.Errorf("exec: index join: no outer column %q", outerCol)
	}
	innerSchema := qualify(inner.Schema, qualifier)
	return &IndexNLJoin{
		ctx:         ctx,
		outer:       outer,
		outerOrd:    oo,
		inner:       inner,
		index:       index,
		innerPreds:  innerPreds,
		innerSchema: innerSchema,
		schema:      outer.Schema().Concat(innerSchema),
	}, nil
}

// Open opens the outer child.
func (j *IndexNLJoin) Open() error { return j.outer.Open() }

// Next emits the next (outer ++ inner) match.
func (j *IndexNLJoin) Next() (tuple.Row, bool, error) {
	for {
		if len(j.pending) > 0 {
			in := j.pending[0]
			j.pending = j.pending[1:]
			j.ctx.Meter.ChargeTuples(1)
			return j.current.Concat(in), true, nil
		}
		row, ok, err := j.outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.ctx.Meter.ChargeTuples(1)
		j.keyBuf = tuple.EncodeKey(j.keyBuf[:0], row[j.outerOrd])
		var matches []tuple.Row
		err = j.index.Tree.Scan(btree.Exact(j.keyBuf), btree.Exact(j.keyBuf), func(_ []byte, rid storage.RID) error {
			rec, err := j.inner.Heap.Fetch(rid)
			if err != nil {
				return err
			}
			inRow, _, err := tuple.DecodeRow(rec, j.inner.Schema)
			if err != nil {
				return err
			}
			j.ctx.Meter.ChargeTuples(1)
			for _, p := range j.innerPreds {
				if !p.Eval(inRow) {
					return nil
				}
			}
			matches = append(matches, inRow)
			return nil
		})
		if err != nil {
			return nil, false, err
		}
		if len(matches) == 0 {
			continue
		}
		j.current = row.Clone()
		j.pending = matches
	}
}

// Close closes the outer child.
func (j *IndexNLJoin) Close() error { return j.outer.Close() }

// Schema is outer ++ inner.
func (j *IndexNLJoin) Schema() *tuple.Schema { return j.schema }

// CrossJoin is a nested-loop cross product with the inner side materialized
// at Open. The planner only emits it for queries whose graph is disconnected
// (transient states while a user assembles a query).
type CrossJoin struct {
	ctx          *Context
	outer, inner Iterator
	schema       *tuple.Schema

	innerRows []tuple.Row
	current   tuple.Row
	pos       int
	haveOuter bool
}

// NewCrossJoin builds outer × inner.
func NewCrossJoin(ctx *Context, outer, inner Iterator) *CrossJoin {
	return &CrossJoin{
		ctx:    ctx,
		outer:  outer,
		inner:  inner,
		schema: outer.Schema().Concat(inner.Schema()),
	}
}

// Open materializes the inner side.
func (j *CrossJoin) Open() error {
	if err := j.outer.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.inner)
	if err != nil {
		return err
	}
	j.innerRows = rows
	j.pos = 0
	j.haveOuter = false
	return nil
}

// Next emits the next pair.
func (j *CrossJoin) Next() (tuple.Row, bool, error) {
	for {
		if j.haveOuter && j.pos < len(j.innerRows) {
			in := j.innerRows[j.pos]
			j.pos++
			j.ctx.Meter.ChargeTuples(1)
			return j.current.Concat(in), true, nil
		}
		row, ok, err := j.outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.ctx.Meter.ChargeTuples(1)
		if len(j.innerRows) == 0 {
			return nil, false, nil // empty inner: empty product
		}
		j.current = row.Clone()
		j.pos = 0
		j.haveOuter = true
	}
}

// Close closes the outer child (the inner was closed by Collect).
func (j *CrossJoin) Close() error {
	j.innerRows = nil
	return j.outer.Close()
}

// Schema is outer ++ inner.
func (j *CrossJoin) Schema() *tuple.Schema { return j.schema }
