// Package exec is the Volcano-style executor: pull-based iterators for
// scans, filters, projections, and joins. Every operator charges the tuples
// it processes to the execution context's meter, which — together with the
// buffer pool's page charging — is where a statement's simulated duration
// comes from.
package exec

import (
	"specdb/internal/sim"
	"specdb/internal/tuple"
)

// Context carries per-execution state through an operator tree.
type Context struct {
	// Meter receives per-tuple CPU charges. Required.
	Meter *sim.Meter
	// WorkMemBytes bounds the memory a single join may use before it
	// spills: a hash join whose build side exceeds it partitions both
	// inputs to disk (charged as page I/O), like the era-appropriate
	// GRACE hash join of the paper's testbed DBMS. 0 disables spilling.
	WorkMemBytes int64
	// Observe, when non-nil, may wrap each operator iterator as the plan
	// is built (EXPLAIN ANALYZE). node is the plan node that produced it —
	// typed any because exec cannot import plan. The wrapper must preserve
	// the iterator's behaviour exactly; it exists only to record actuals.
	Observe func(node any, it Iterator) Iterator
}

// Instrument passes it through ctx.Observe if set; plan-node Build methods
// call this on their finished iterator so EXPLAIN ANALYZE can attribute rows
// and work to the node that produced them.
func (c *Context) Instrument(node any, it Iterator) Iterator {
	if c.Observe == nil {
		return it
	}
	return c.Observe(node, it)
}

// NewContext returns a context charging to meter.
func NewContext(meter *sim.Meter) *Context { return &Context{Meter: meter} }

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the operator (builds hash tables, positions cursors).
	Open() error
	// Next produces the next row; ok is false at end of stream. The returned
	// row may be reused by the operator on the following Next call unless
	// documented otherwise; callers that retain rows must Clone them.
	Next() (row tuple.Row, ok bool, err error)
	// Close releases resources. Must be safe to call after a failed Open and
	// more than once.
	Close() error
	// Schema describes the rows produced.
	Schema() *tuple.Schema
}

// Drain runs an iterator to completion, invoking fn for each row, and always
// closes it. It is the standard top-level execution loop.
func Drain(it Iterator, fn func(tuple.Row) error) (err error) {
	if err := it.Open(); err != nil {
		it.Close()
		return err
	}
	defer func() {
		if cerr := it.Close(); err == nil {
			err = cerr
		}
	}()
	for {
		row, ok, err2 := it.Next()
		if err2 != nil {
			return err2
		}
		if !ok {
			return nil
		}
		if fn != nil {
			if err2 := fn(row); err2 != nil {
				return err2
			}
		}
	}
}

// Collect drains an iterator into a materialized row slice (rows are cloned).
func Collect(it Iterator) ([]tuple.Row, error) {
	var out []tuple.Row
	err := Drain(it, func(r tuple.Row) error {
		out = append(out, r.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count drains an iterator and reports the number of rows.
func Count(it Iterator) (int64, error) {
	var n int64
	err := Drain(it, func(tuple.Row) error {
		n++
		return nil
	})
	return n, err
}
