package exec

import (
	"fmt"
	"sort"
	"testing"

	"specdb/internal/btree"
	"specdb/internal/buffer"
	"specdb/internal/catalog"
	"specdb/internal/sim"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

type env struct {
	disk  *storage.DiskManager
	pool  *buffer.Pool
	cat   *catalog.Catalog
	meter *sim.Meter
	ctx   *Context
}

func newEnv(t *testing.T) *env {
	t.Helper()
	disk := storage.NewDiskManager(1024)
	meter := sim.NewMeter()
	pool := buffer.NewPool(disk, 256, meter)
	return &env{
		disk:  disk,
		pool:  pool,
		cat:   catalog.New(pool),
		meter: meter,
		ctx:   NewContext(meter),
	}
}

// loadEmployees creates the paper's employee(name, age, salary) relation with
// n rows: age cycles 20..59, salary = 1000*age.
func (e *env) loadEmployees(t *testing.T, n int) *catalog.Table {
	t.Helper()
	schema := tuple.NewSchema(
		tuple.Column{Name: "name", Kind: tuple.KindString},
		tuple.Column{Name: "age", Kind: tuple.KindInt},
		tuple.Column{Name: "salary", Kind: tuple.KindFloat},
	)
	tb, err := e.cat.CreateTable("employee", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		age := int64(20 + i%40)
		row := tuple.Row{
			tuple.NewString(fmt.Sprintf("emp%04d", i)),
			tuple.NewInt(age),
			tuple.NewFloat(float64(age) * 1000),
		}
		rec, err := tuple.EncodeRow(nil, schema, row)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// indexOn builds a B+-tree index over tb.col.
func (e *env) indexOn(t *testing.T, tb *catalog.Table, col string) *catalog.Index {
	t.Helper()
	tree, err := btree.New(e.pool, e.disk.PageSize())
	if err != nil {
		t.Fatal(err)
	}
	ord := tb.Schema.MustOrdinal(col)
	err = tb.Heap.Scan(func(rid storage.RID, rec []byte) error {
		row, _, err := tuple.DecodeRow(rec, tb.Schema)
		if err != nil {
			return err
		}
		return tree.Insert(tuple.EncodeKey(nil, row[ord]), rid)
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := e.cat.AddIndex(tb.Name, col, tree)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestSeqScan(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 100)
	scan := NewSeqScan(e.ctx, tb, "employee")
	if scan.Schema().Ordinal("employee.age") != 1 {
		t.Fatalf("qualified schema %v", scan.Schema())
	}
	n, err := Count(scan)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("scanned %d rows", n)
	}
	if e.meter.Snapshot().Tuples < 100 {
		t.Fatal("scan did not charge tuples")
	}
}

func TestSeqScanUnqualified(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 5)
	scan := NewSeqScan(e.ctx, tb, "")
	if scan.Schema().Ordinal("age") != 1 {
		t.Fatalf("unqualified schema %v", scan.Schema())
	}
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0][0].S != "emp0000" {
		t.Fatalf("rows %v", rows)
	}
}

func TestFilter(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 200)
	scan := NewSeqScan(e.ctx, tb, "employee")
	p, err := CompilePred(scan.Schema(), "employee.age", tuple.CmpLT, tuple.NewInt(30))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(NewFilter(e.ctx, scan, []Pred{p}))
	if err != nil {
		t.Fatal(err)
	}
	// Ages 20..29 of a 40-value cycle over 200 rows → 50 rows.
	if len(rows) != 50 {
		t.Fatalf("filtered %d rows, want 50", len(rows))
	}
	for _, r := range rows {
		if r[1].I >= 30 {
			t.Fatalf("row %v violates predicate", r)
		}
	}
}

func TestFilterCompileError(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 1)
	scan := NewSeqScan(e.ctx, tb, "employee")
	if _, err := CompilePred(scan.Schema(), "ghost", tuple.CmpEQ, tuple.NewInt(1)); err == nil {
		t.Fatal("unknown column should fail compilation")
	}
}

func TestProject(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 10)
	scan := NewSeqScan(e.ctx, tb, "employee")
	proj, err := NewProject(e.ctx, scan, []string{"employee.salary", "employee.name"})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Schema().Len() != 2 || proj.Schema().Columns[0].Name != "employee.salary" {
		t.Fatalf("projected schema %v", proj.Schema())
	}
	rows, err := Collect(proj)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || rows[0][1].S != "emp0000" {
		t.Fatalf("projected rows wrong: %v", rows[0])
	}
	if _, err := NewProject(e.ctx, NewSeqScan(e.ctx, tb, ""), []string{"ghost"}); err == nil {
		t.Fatal("projecting unknown column should fail")
	}
}

func TestIndexScanRange(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 400)
	idx := e.indexOn(t, tb, "age")

	lo := btree.Bound{Key: tuple.EncodeKey(nil, tuple.NewInt(25)), Inclusive: true}
	hi := btree.Bound{Key: tuple.EncodeKey(nil, tuple.NewInt(27)), Inclusive: true}
	scan := NewIndexScan(e.ctx, tb, idx, lo, hi, "employee")
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	// Ages 25,26,27 each appear 10 times per 40-cycle over 400 rows → 30.
	if len(rows) != 30 {
		t.Fatalf("index scan found %d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if r[1].I < 25 || r[1].I > 27 {
			t.Fatalf("row %v out of range", r)
		}
	}
}

func TestIndexScanReopen(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 40)
	idx := e.indexOn(t, tb, "age")
	key := tuple.EncodeKey(nil, tuple.NewInt(30))
	scan := NewIndexScan(e.ctx, tb, idx, btree.Exact(key), btree.Exact(key), "")
	for round := 0; round < 2; round++ {
		n, err := Count(scan)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("round %d: %d rows", round, n)
		}
	}
}

func TestHashJoin(t *testing.T) {
	e := newEnv(t)
	// dept(id, dname); employee joined on age = dept.id for test simplicity.
	deptSchema := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "dname", Kind: tuple.KindString},
	)
	dept, err := e.cat.CreateTable("dept", deptSchema)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{20, 21, 22} {
		rec, _ := tuple.EncodeRow(nil, deptSchema, tuple.Row{tuple.NewInt(id), tuple.NewString(fmt.Sprintf("d%d", id))})
		if _, err := dept.Heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	emp := e.loadEmployees(t, 80) // ages 20..59, ×2

	j, err := NewHashJoin(e.ctx,
		NewSeqScan(e.ctx, dept, "dept"),
		NewSeqScan(e.ctx, emp, "employee"),
		"dept.id", "employee.age")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// Each of ages 20,21,22 appears twice in 80 rows → 6 join rows.
	if len(rows) != 6 {
		t.Fatalf("join produced %d rows, want 6", len(rows))
	}
	sch := j.Schema()
	di, ai := sch.MustOrdinal("dept.id"), sch.MustOrdinal("employee.age")
	for _, r := range rows {
		if r[di].I != r[ai].I {
			t.Fatalf("join row violates condition: %v", r)
		}
	}
}

func TestHashJoinErrors(t *testing.T) {
	e := newEnv(t)
	emp := e.loadEmployees(t, 4)
	l := NewSeqScan(e.ctx, emp, "a")
	r := NewSeqScan(e.ctx, emp, "b")
	if _, err := NewHashJoin(e.ctx, l, r, "a.ghost", "b.age"); err == nil {
		t.Fatal("bad build column should fail")
	}
	if _, err := NewHashJoin(e.ctx, l, r, "a.age", "b.ghost"); err == nil {
		t.Fatal("bad probe column should fail")
	}
	if _, err := NewHashJoin(e.ctx, l, r, "a.age", "b.name"); err == nil {
		t.Fatal("kind mismatch should fail")
	}
}

func TestIndexNLJoin(t *testing.T) {
	e := newEnv(t)
	emp := e.loadEmployees(t, 80)
	idx := e.indexOn(t, emp, "age")

	deptSchema := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
	)
	dept, err := e.cat.CreateTable("dept", deptSchema)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{21, 25, 99} { // 99 matches nothing
		rec, _ := tuple.EncodeRow(nil, deptSchema, tuple.Row{tuple.NewInt(id)})
		if _, err := dept.Heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Inner-side predicate: salary > 0 (passes all) to exercise pred path.
	innerPred, err := CompilePred(emp.Schema, "salary", tuple.CmpGT, tuple.NewFloat(0))
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewIndexNLJoin(e.ctx,
		NewSeqScan(e.ctx, dept, "dept"),
		"dept.id", emp, idx, "employee", []Pred{innerPred})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// Ages 21 and 25 appear twice each in 80 rows → 4 matches.
	if len(rows) != 4 {
		t.Fatalf("index NL join produced %d rows, want 4", len(rows))
	}
	// Filtering predicate that rejects everything.
	reject, _ := CompilePred(emp.Schema, "salary", tuple.CmpLT, tuple.NewFloat(0))
	j2, err := NewIndexNLJoin(e.ctx,
		NewSeqScan(e.ctx, dept, "dept"),
		"dept.id", emp, idx, "employee", []Pred{reject})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := Count(j2); err != nil || n != 0 {
		t.Fatalf("rejecting pred: n=%d err=%v", n, err)
	}
}

func TestCrossJoin(t *testing.T) {
	e := newEnv(t)
	sch := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt})
	rowsOf := func(vals ...int64) []tuple.Row {
		out := make([]tuple.Row, len(vals))
		for i, v := range vals {
			out[i] = tuple.Row{tuple.NewInt(v)}
		}
		return out
	}
	lsch := sch.Rename(func(s string) string { return "l." + s })
	rsch := sch.Rename(func(s string) string { return "r." + s })
	j := NewCrossJoin(e.ctx,
		NewValuesScan(e.ctx, lsch, rowsOf(1, 2, 3)),
		NewValuesScan(e.ctx, rsch, rowsOf(10, 20)))
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("cross join %d rows, want 6", len(rows))
	}
	// Empty inner.
	j2 := NewCrossJoin(e.ctx,
		NewValuesScan(e.ctx, lsch, rowsOf(1, 2)),
		NewValuesScan(e.ctx, rsch, nil))
	if n, err := Count(j2); err != nil || n != 0 {
		t.Fatalf("empty inner: n=%d err=%v", n, err)
	}
}

// TestJoinEquivalence checks hash join and index-NL join produce the same
// multiset as a reference nested loop, on seeded random data.
func TestJoinEquivalence(t *testing.T) {
	e := newEnv(t)
	r := sim.NewRand(77)

	mkTable := func(name string, n int, maxKey int64) *catalog.Table {
		sch := tuple.NewSchema(
			tuple.Column{Name: "k", Kind: tuple.KindInt},
			tuple.Column{Name: "payload", Kind: tuple.KindInt},
		)
		tb, err := e.cat.CreateTable(name, sch)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			rec, _ := tuple.EncodeRow(nil, sch, tuple.Row{
				tuple.NewInt(r.Int63n(maxKey)), tuple.NewInt(int64(i)),
			})
			if _, err := tb.Heap.Insert(rec); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	a := mkTable("ta", 150, 20)
	b := mkTable("tb", 120, 20)
	idx := e.indexOn(t, b, "k")

	// Reference: naive double loop.
	rowsA, _ := Collect(NewSeqScan(e.ctx, a, "ta"))
	rowsB, _ := Collect(NewSeqScan(e.ctx, b, "tb"))
	var ref []string
	for _, ra := range rowsA {
		for _, rb := range rowsB {
			if ra[0].I == rb[0].I {
				ref = append(ref, fmt.Sprint(ra[1].I, "/", rb[1].I))
			}
		}
	}
	sort.Strings(ref)

	normalize := func(rows []tuple.Row, aOrd, bOrd int) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprint(r[aOrd].I, "/", r[bOrd].I)
		}
		sort.Strings(out)
		return out
	}

	hj, err := NewHashJoin(e.ctx, NewSeqScan(e.ctx, a, "ta"), NewSeqScan(e.ctx, b, "tb"), "ta.k", "tb.k")
	if err != nil {
		t.Fatal(err)
	}
	hjRows, err := Collect(hj)
	if err != nil {
		t.Fatal(err)
	}
	got := normalize(hjRows, hj.Schema().MustOrdinal("ta.payload"), hj.Schema().MustOrdinal("tb.payload"))
	if fmt.Sprint(got) != fmt.Sprint(ref) {
		t.Fatalf("hash join disagrees with reference: %d vs %d rows", len(got), len(ref))
	}

	ij, err := NewIndexNLJoin(e.ctx, NewSeqScan(e.ctx, a, "ta"), "ta.k", b, idx, "tb", nil)
	if err != nil {
		t.Fatal(err)
	}
	ijRows, err := Collect(ij)
	if err != nil {
		t.Fatal(err)
	}
	got = normalize(ijRows, ij.Schema().MustOrdinal("ta.payload"), ij.Schema().MustOrdinal("tb.payload"))
	if fmt.Sprint(got) != fmt.Sprint(ref) {
		t.Fatalf("index join disagrees with reference: %d vs %d rows", len(got), len(ref))
	}
}

func TestDrainClosesOnError(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 10)
	scan := NewSeqScan(e.ctx, tb, "")
	sentinel := fmt.Errorf("boom")
	err := Drain(scan, func(tuple.Row) error { return sentinel })
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	// The underlying page pin must have been released: EvictAll succeeds
	// only when nothing is pinned.
	if err := e.pool.EvictAll(); err != nil {
		t.Fatalf("pins leaked: %v", err)
	}
}

func TestValuesScanRewind(t *testing.T) {
	e := newEnv(t)
	sch := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt})
	vs := NewValuesScan(e.ctx, sch, []tuple.Row{{tuple.NewInt(1)}, {tuple.NewInt(2)}})
	for round := 0; round < 3; round++ {
		n, err := Count(vs)
		if err != nil || n != 2 {
			t.Fatalf("round %d: n=%d err=%v", round, n, err)
		}
	}
}
