package exec

import (
	"sync"

	"specdb/internal/sim"
	"specdb/internal/tuple"
)

// OpStats are the actuals recorded for one plan node by a Profiler: how many
// rows it produced and how much simulated work happened inside its subtree.
// Work is *inclusive* — it covers the node and everything below it, the same
// convention EXPLAIN ANALYZE output uses for per-node cost.
type OpStats struct {
	// Rows is the number of rows the operator returned from Next.
	Rows int64
	// Opens counts Open calls (>1 for the inner side of a re-opened loop).
	Opens int64
	// Work is the meter delta observed across the operator's Open and Next
	// calls: page reads/writes and tuples charged while control was inside
	// the subtree rooted at this operator.
	Work sim.Work
}

// Profiler records OpStats per plan node during one instrumented execution.
// Install it on a Context via Attach; plan Build methods route their
// iterators through Context.Instrument, and the wrapper iterators report
// here. Attribution relies on the engine executing one measured statement at
// a time (the shared meter then moves only for this statement), which the
// engine's statement serialization guarantees.
type Profiler struct {
	meter *sim.Meter

	mu    sync.Mutex
	stats map[any]*OpStats
}

// NewProfiler returns a profiler reading work deltas from meter.
func NewProfiler(meter *sim.Meter) *Profiler {
	return &Profiler{meter: meter, stats: make(map[any]*OpStats)}
}

// Attach installs the profiler as ctx's Observe hook.
func (p *Profiler) Attach(ctx *Context) {
	ctx.Observe = func(node any, it Iterator) Iterator {
		return &profiledIter{inner: it, stats: p.statsFor(node), meter: p.meter}
	}
}

// Stats returns the actuals recorded for node, or nil if the node never
// produced an instrumented iterator (e.g. a fused index-lookup inner side).
func (p *Profiler) Stats(node any) *OpStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats[node]
}

func (p *Profiler) statsFor(node any) *OpStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.stats[node]
	if !ok {
		s = &OpStats{}
		p.stats[node] = s
	}
	return s
}

// profiledIter wraps an operator, snapshotting the shared meter around Open
// and Next to accumulate the subtree's inclusive work. It never charges the
// meter itself, so instrumented runs measure identically to bare ones.
type profiledIter struct {
	inner Iterator
	stats *OpStats
	meter *sim.Meter
}

func (p *profiledIter) Open() error {
	before := p.meter.Snapshot()
	err := p.inner.Open()
	p.addWork(before)
	p.stats.Opens++
	return err
}

func (p *profiledIter) Next() (tuple.Row, bool, error) {
	before := p.meter.Snapshot()
	row, ok, err := p.inner.Next()
	p.addWork(before)
	if ok && err == nil {
		p.stats.Rows++
	}
	return row, ok, err
}

func (p *profiledIter) Close() error          { return p.inner.Close() }
func (p *profiledIter) Schema() *tuple.Schema { return p.inner.Schema() }

func (p *profiledIter) addWork(before sim.Work) {
	after := p.meter.Snapshot()
	p.stats.Work.PageReads += after.PageReads - before.PageReads
	p.stats.Work.PageWrites += after.PageWrites - before.PageWrites
	p.stats.Work.Tuples += after.Tuples - before.Tuples
}
