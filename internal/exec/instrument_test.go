package exec

import (
	"testing"
)

// TestProfilerAttributesWork runs an instrumented scan and checks that the
// profiler records row counts and the meter delta of the wrapped subtree,
// without charging any extra work itself.
func TestProfilerAttributesWork(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 100)
	node := "scan-node" // any comparable key works; plan uses Node pointers

	prof := NewProfiler(e.meter)
	prof.Attach(e.ctx)
	bare := e.meter.Snapshot()

	it := e.ctx.Instrument(node, NewSeqScan(e.ctx, tb, "employee"))
	if _, ok := it.(*profiledIter); !ok {
		t.Fatalf("Instrument returned %T, want *profiledIter", it)
	}
	n, err := Count(it)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("counted %d rows", n)
	}

	st := prof.Stats(node)
	if st == nil {
		t.Fatal("no stats recorded for node")
	}
	if st.Rows != 100 || st.Opens != 1 {
		t.Fatalf("stats %+v, want rows=100 opens=1", st)
	}
	// Inclusive attribution: the profiled subtree saw exactly the work the
	// meter accumulated during the run — instrumentation charged nothing.
	after := e.meter.Snapshot()
	if got, want := st.Work.Tuples, after.Tuples-bare.Tuples; got != want {
		t.Fatalf("attributed %d tuples, meter moved %d", got, want)
	}
	if got, want := st.Work.PageReads, after.PageReads-bare.PageReads; got != want {
		t.Fatalf("attributed %d reads, meter moved %d", got, want)
	}

	// Unknown nodes report nil — the EXPLAIN ANALYZE "fused" rendering path.
	if prof.Stats("never-built") != nil {
		t.Fatal("stats for an unbuilt node should be nil")
	}
}

// TestInstrumentWithoutObserver is the bare-execution path: no Observe hook
// means Instrument is a passthrough.
func TestInstrumentWithoutObserver(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 5)
	scan := NewSeqScan(e.ctx, tb, "")
	if got := e.ctx.Instrument("n", scan); got != Iterator(scan) {
		t.Fatalf("Instrument without observer returned %T, want the iterator unchanged", got)
	}
}

// TestProfilerReopenCounts pins Opens accounting across iterator reuse (the
// inner side of a nested-loop join is re-opened per outer row).
func TestProfilerReopenCounts(t *testing.T) {
	e := newEnv(t)
	tb := e.loadEmployees(t, 3)
	prof := NewProfiler(e.meter)
	prof.Attach(e.ctx)
	it := e.ctx.Instrument("k", NewSeqScan(e.ctx, tb, ""))
	for i := 0; i < 4; i++ {
		if _, err := Collect(it); err != nil { // Collect opens and closes
			t.Fatal(err)
		}
	}
	st := prof.Stats("k")
	if st.Opens != 4 {
		t.Fatalf("opens = %d, want 4", st.Opens)
	}
	if st.Rows != 12 {
		t.Fatalf("rows = %d, want 12 across 4 runs", st.Rows)
	}
}
