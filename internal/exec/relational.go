package exec

import (
	"fmt"

	"specdb/internal/tuple"
)

// Pred is a compiled selection predicate: column ordinal op constant.
type Pred struct {
	Ord   int
	Op    tuple.CmpOp
	Const tuple.Value
}

// CompilePred resolves a named predicate against a schema.
func CompilePred(schema *tuple.Schema, col string, op tuple.CmpOp, constant tuple.Value) (Pred, error) {
	ord := schema.Ordinal(col)
	if ord < 0 {
		return Pred{}, fmt.Errorf("exec: schema %v has no column %q", schema, col)
	}
	return Pred{Ord: ord, Op: op, Const: constant}, nil
}

// Eval applies the predicate to a row.
func (p Pred) Eval(row tuple.Row) bool { return p.Op.Eval(row[p.Ord], p.Const) }

// Filter passes through rows satisfying every predicate.
type Filter struct {
	ctx   *Context
	child Iterator
	preds []Pred
}

// NewFilter wraps child with a conjunctive filter.
func NewFilter(ctx *Context, child Iterator, preds []Pred) *Filter {
	return &Filter{ctx: ctx, child: child, preds: preds}
}

// Open opens the child.
func (f *Filter) Open() error { return f.child.Open() }

// Next pulls until a row satisfies all predicates.
func (f *Filter) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.ctx.Meter.ChargeTuples(1)
		match := true
		for _, p := range f.preds {
			if !p.Eval(row) {
				match = false
				break
			}
		}
		if match {
			return row, true, nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { return f.child.Close() }

// Schema is the child's schema.
func (f *Filter) Schema() *tuple.Schema { return f.child.Schema() }

// Project reorders/narrows columns by ordinal.
type Project struct {
	ctx    *Context
	child  Iterator
	ords   []int
	schema *tuple.Schema
	out    tuple.Row
}

// NewProject projects child onto the named columns, in order.
func NewProject(ctx *Context, child Iterator, cols []string) (*Project, error) {
	in := child.Schema()
	ords := make([]int, len(cols))
	outCols := make([]tuple.Column, len(cols))
	for i, c := range cols {
		ord := in.Ordinal(c)
		if ord < 0 {
			return nil, fmt.Errorf("exec: projection column %q not in %v", c, in)
		}
		ords[i] = ord
		outCols[i] = in.Columns[ord]
	}
	return &Project{
		ctx:    ctx,
		child:  child,
		ords:   ords,
		schema: tuple.NewSchema(outCols...),
		out:    make(tuple.Row, len(cols)),
	}, nil
}

// Open opens the child.
func (p *Project) Open() error { return p.child.Open() }

// Next narrows the next child row. The returned row is reused.
func (p *Project) Next() (tuple.Row, bool, error) {
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, ord := range p.ords {
		p.out[i] = row[ord]
	}
	p.ctx.Meter.ChargeTuples(1)
	return p.out, true, nil
}

// Close closes the child.
func (p *Project) Close() error { return p.child.Close() }

// Schema reports the projected schema.
func (p *Project) Schema() *tuple.Schema { return p.schema }
