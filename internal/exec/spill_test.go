package exec

import (
	"fmt"
	"sort"
	"testing"

	"specdb/internal/catalog"
	"specdb/internal/tuple"
)

// spillTables builds two join tables large enough that the wide side's
// encoded bytes exceed small work-memory budgets.
func spillTables(t *testing.T, e *env, n int) (*catalog.Table, *catalog.Table) {
	t.Helper()
	big := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt},
		tuple.Column{Name: "pad", Kind: tuple.KindString},
	)
	bt, err := e.cat.CreateTable("big", big)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec, _ := tuple.EncodeRow(nil, big, tuple.Row{
			tuple.NewInt(int64(i % 50)),
			tuple.NewString(fmt.Sprintf("padding-padding-%06d", i)),
		})
		if _, err := bt.Heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	small := tuple.NewSchema(tuple.Column{Name: "k", Kind: tuple.KindInt})
	st, err := e.cat.CreateTable("small", small)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rec, _ := tuple.EncodeRow(nil, small, tuple.Row{tuple.NewInt(int64(i))})
		if _, err := st.Heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	return bt, st
}

func TestHashJoinSpillCharges(t *testing.T) {
	e := newEnv(t)
	bt, st := spillTables(t, e, 3000)

	runJoin := func(workMem int64) (rows int, writes int64) {
		ctx := &Context{Meter: e.meter, WorkMemBytes: workMem}
		before := e.meter.Snapshot()
		j, err := NewHashJoin(ctx,
			NewSeqScan(ctx, bt, "big"), // build = the wide side: forces spill
			NewSeqScan(ctx, st, "small"),
			"big.k", "small.k")
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		d := e.meter.Since(before)
		return len(out), d.PageWrites
	}

	rowsNoSpill, writesNoSpill := runJoin(0)           // unlimited memory
	rowsSpill, writesSpill := runJoin(16 * 1024)       // tiny work memory
	rowsBig, writesBigMem := runJoin(64 * 1024 * 1024) // plenty

	if rowsNoSpill != rowsSpill || rowsNoSpill != rowsBig {
		t.Fatalf("spill changed results: %d / %d / %d", rowsNoSpill, rowsSpill, rowsBig)
	}
	if writesNoSpill != 0 || writesBigMem != 0 {
		t.Fatalf("in-memory joins charged writes: %d / %d", writesNoSpill, writesBigMem)
	}
	if writesSpill == 0 {
		t.Fatal("spilling join charged no write I/O")
	}
	// GRACE accounting: roughly (build+probe bytes)/pageSize writes.
	if writesSpill < 5 {
		t.Fatalf("spill writes %d implausibly low", writesSpill)
	}
}

func TestHashJoinSpillEquivalence(t *testing.T) {
	// Joined output must be identical bytes regardless of spilling.
	e := newEnv(t)
	bt, st := spillTables(t, e, 1200)
	collectSorted := func(workMem int64) []string {
		ctx := &Context{Meter: e.meter, WorkMemBytes: workMem}
		j, err := NewHashJoin(ctx,
			NewSeqScan(ctx, bt, "big"),
			NewSeqScan(ctx, st, "small"),
			"big.k", "small.k")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return out
	}
	a := collectSorted(0)
	b := collectSorted(8 * 1024)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs under spill", i)
		}
	}
}
