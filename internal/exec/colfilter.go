package exec

import (
	"fmt"

	"specdb/internal/tuple"
)

// ColPred compares two columns of the same row: used for join edges beyond
// the primary equi-join key (a join between two sub-plans may carry several
// join edges; one drives the hash table, the rest become ColPreds).
type ColPred struct {
	LeftOrd  int
	Op       tuple.CmpOp
	RightOrd int
}

// CompileColPred resolves two column names against a schema.
func CompileColPred(schema *tuple.Schema, left string, op tuple.CmpOp, right string) (ColPred, error) {
	lo := schema.Ordinal(left)
	if lo < 0 {
		return ColPred{}, fmt.Errorf("exec: schema has no column %q", left)
	}
	ro := schema.Ordinal(right)
	if ro < 0 {
		return ColPred{}, fmt.Errorf("exec: schema has no column %q", right)
	}
	return ColPred{LeftOrd: lo, Op: op, RightOrd: ro}, nil
}

// Eval applies the predicate to a row.
func (p ColPred) Eval(row tuple.Row) bool { return p.Op.Eval(row[p.LeftOrd], row[p.RightOrd]) }

// ColFilter passes through rows satisfying every column-column predicate.
type ColFilter struct {
	ctx   *Context
	child Iterator
	preds []ColPred
}

// NewColFilter wraps child.
func NewColFilter(ctx *Context, child Iterator, preds []ColPred) *ColFilter {
	return &ColFilter{ctx: ctx, child: child, preds: preds}
}

// Open opens the child.
func (f *ColFilter) Open() error { return f.child.Open() }

// Next pulls until a row satisfies all predicates.
func (f *ColFilter) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.ctx.Meter.ChargeTuples(1)
		match := true
		for _, p := range f.preds {
			if !p.Eval(row) {
				match = false
				break
			}
		}
		if match {
			return row, true, nil
		}
	}
}

// Close closes the child.
func (f *ColFilter) Close() error { return f.child.Close() }

// Schema is the child's schema.
func (f *ColFilter) Schema() *tuple.Schema { return f.child.Schema() }
