package exec

import (
	"fmt"

	"specdb/internal/btree"
	"specdb/internal/catalog"
	"specdb/internal/storage"
	"specdb/internal/tuple"
)

// qualify renames a stored schema with a relation prefix. A view's stored
// columns are already qualified ("rel.col"), so view scans pass qualifier "".
func qualify(s *tuple.Schema, qualifier string) *tuple.Schema {
	if qualifier == "" {
		return s
	}
	return s.Rename(func(n string) string { return qualifier + "." + n })
}

// SeqScan reads a table front to back.
type SeqScan struct {
	ctx    *Context
	table  *catalog.Table
	schema *tuple.Schema
	iter   *storage.HeapIterator
}

// NewSeqScan builds a sequential scan over table. qualifier, when non-empty,
// prefixes column names ("R" turns column "a" into "R.a").
func NewSeqScan(ctx *Context, table *catalog.Table, qualifier string) *SeqScan {
	return &SeqScan{
		ctx:    ctx,
		table:  table,
		schema: qualify(table.Schema, qualifier),
	}
}

// Open positions the cursor.
func (s *SeqScan) Open() error {
	s.iter = s.table.Heap.NewIterator()
	return nil
}

// Next decodes and returns the next stored row.
func (s *SeqScan) Next() (tuple.Row, bool, error) {
	_, rec, ok, err := s.iter.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	row, _, err := tuple.DecodeRow(rec, s.table.Schema)
	if err != nil {
		return nil, false, fmt.Errorf("exec: decoding row in %q: %w", s.table.Name, err)
	}
	s.ctx.Meter.ChargeTuples(1)
	return row, true, nil
}

// Close releases the cursor.
func (s *SeqScan) Close() error {
	if s.iter != nil {
		s.iter.Close()
		s.iter = nil
	}
	return nil
}

// Schema reports the (possibly qualified) output schema.
func (s *SeqScan) Schema() *tuple.Schema { return s.schema }

// IndexScan fetches the rows whose indexed column falls within [lo, hi] via
// a B+-tree, then fetches each matching row from the heap. Matching RIDs are
// gathered at Open (charging index-page I/O); heap fetches happen lazily.
type IndexScan struct {
	ctx    *Context
	table  *catalog.Table
	index  *catalog.Index
	lo, hi btree.Bound
	schema *tuple.Schema

	rids []storage.RID
	pos  int
}

// NewIndexScan builds an index scan with the given key bounds (tuple.EncodeKey
// encodings; nil key = unbounded).
func NewIndexScan(ctx *Context, table *catalog.Table, index *catalog.Index, lo, hi btree.Bound, qualifier string) *IndexScan {
	return &IndexScan{
		ctx:    ctx,
		table:  table,
		index:  index,
		lo:     lo,
		hi:     hi,
		schema: qualify(table.Schema, qualifier),
	}
}

// Open walks the index and gathers matching RIDs.
func (s *IndexScan) Open() error {
	s.rids = s.rids[:0]
	s.pos = 0
	return s.index.Tree.Scan(s.lo, s.hi, func(key []byte, rid storage.RID) error {
		s.rids = append(s.rids, rid)
		return nil
	})
}

// Next fetches the row for the next matching RID.
func (s *IndexScan) Next() (tuple.Row, bool, error) {
	if s.pos >= len(s.rids) {
		return nil, false, nil
	}
	rec, err := s.table.Heap.Fetch(s.rids[s.pos])
	if err != nil {
		return nil, false, err
	}
	s.pos++
	row, _, err := tuple.DecodeRow(rec, s.table.Schema)
	if err != nil {
		return nil, false, err
	}
	s.ctx.Meter.ChargeTuples(1)
	return row, true, nil
}

// Close is a no-op (Open re-gathers).
func (s *IndexScan) Close() error { return nil }

// Schema reports the output schema.
func (s *IndexScan) Schema() *tuple.Schema { return s.schema }

// ValuesScan replays an in-memory row set; used for tests and for
// re-scanning materialized intermediates.
type ValuesScan struct {
	ctx    *Context
	schema *tuple.Schema
	rows   []tuple.Row
	pos    int
}

// NewValuesScan wraps rows with the given schema.
func NewValuesScan(ctx *Context, schema *tuple.Schema, rows []tuple.Row) *ValuesScan {
	return &ValuesScan{ctx: ctx, schema: schema, rows: rows}
}

// Open rewinds.
func (v *ValuesScan) Open() error { v.pos = 0; return nil }

// Next returns the next stored row.
func (v *ValuesScan) Next() (tuple.Row, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	row := v.rows[v.pos]
	v.pos++
	v.ctx.Meter.ChargeTuples(1)
	return row, true, nil
}

// Close is a no-op.
func (v *ValuesScan) Close() error { return nil }

// Schema reports the row schema.
func (v *ValuesScan) Schema() *tuple.Schema { return v.schema }
