// Multiuser: the Section 6.3 scenario — three analysts exploring the same
// database simultaneously. Each has their own Speculator (restricted to
// selection materializations, the paper's low-interference strategy); the
// server runs everything on one shared buffer pool with a contention model.
//
// This example drives the experiment harness directly: it replays three
// synthetic interface traces interleaved by timestamp, once without and once
// with speculation, and prints the per-user outcome.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"

	"specdb/internal/core"
	"specdb/internal/harness"
	"specdb/internal/tpch"
	"specdb/internal/trace"
)

func main() {
	fmt.Println("generating three user sessions...")
	traces, err := trace.GenerateCorpus(tpch.Vocabulary(), 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loading the 100MB TPC-H subset (96MB-equivalent shared pool)...")
	env, err := harness.NewEnv(harness.EnvConfig{
		Scale:            tpch.Scale100MB,
		Seed:             42,
		BufferPoolPages:  harness.PoolPages96MB,
		ContentionFactor: 0.35,
	})
	if err != nil {
		log.Fatal(err)
	}

	normal, err := harness.RunMultiUserNormal(env.Eng, traces)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.SelectionsOnly = true // reduce interference between users
	spec, err := harness.RunMultiUserSpeculative(env.Eng, traces, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate per user.
	type agg struct{ n, s float64 }
	perUser := map[int]*agg{}
	specBy := map[[2]int]float64{}
	for _, t := range spec.Timings {
		specBy[[2]int{t.TraceIdx, t.QueryIdx}] = t.Seconds
	}
	for _, t := range normal {
		a := perUser[t.TraceIdx]
		if a == nil {
			a = &agg{}
			perUser[t.TraceIdx] = a
		}
		a.n += t.Seconds
		a.s += specBy[[2]int{t.TraceIdx, t.QueryIdx}]
	}
	fmt.Printf("\n%-8s %12s %12s %10s\n", "user", "normal(s)", "spec(s)", "improve%")
	var tn, ts float64
	for u := 0; u < len(traces); u++ {
		a := perUser[u]
		tn += a.n
		ts += a.s
		fmt.Printf("user%02d   %12.1f %12.1f %9.1f%%\n", u+1, a.n, a.s, (1-a.s/a.n)*100)
	}
	fmt.Printf("%-8s %12.1f %12.1f %9.1f%%\n", "all", tn, ts, (1-ts/tn)*100)
	st := spec.Stats
	fmt.Printf("\nmanipulations: issued %d, completed %d, canceled %d (contention slows everyone)\n",
		st.Issued, st.Completed, st.CanceledInvalidated+st.CanceledAtGo)
}
