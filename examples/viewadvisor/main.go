// Viewadvisor: the Section 6.2 comparison in miniature — materialized views
// versus speculation versus their combination.
//
// Pre-materialized views are a *static* bet on the workload: built once and
// great for broad queries that match them. Speculation is a *dynamic* bet:
// small materializations that chase the user's current, selective intent.
// The paper's finding, reproduced here: views win the long broad queries,
// speculation wins the short selective ones, and the combination wins both.
//
//	go run ./examples/viewadvisor
package main

import (
	"fmt"
	"log"
	"time"

	"specdb"
)

const (
	broadQuery = "SELECT * FROM customer, orders, lineitem " +
		"WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey " +
		"AND lineitem.l_quantity >= 1" // keeps everything: a long, join-bound query
	selectiveQuery = "SELECT * FROM customer, orders, lineitem " +
		"WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey " +
		"AND lineitem.l_quantity = 1" // a short, selective exploration step
)

func main() {
	fmt.Println("loading two copies of the 100MB TPC-H subset (with and without views)...")
	plain := specdb.Open(specdb.Options{})
	must(plain.LoadTPCH("100MB", 42))

	withViews := specdb.Open(specdb.Options{UseOptionalViews: true})
	must(withViews.LoadTPCH("100MB", 42))
	// The advisor's static bet: materialize the orders ⋈ lineitem join.
	if _, err := withViews.Exec("SELECT * FROM orders, lineitem " +
		"WHERE orders.o_orderkey = lineitem.l_orderkey INTO mv_ord_li"); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %14s %14s\n", "mode", "broad query", "selective query")
	report := func(mode string, broad, selective time.Duration) {
		fmt.Printf("%-22s %14v %14v\n", mode, broad, selective)
	}

	report("normal", run(plain, broadQuery), run(plain, selectiveQuery))
	report("materialized views", run(withViews, broadQuery), run(withViews, selectiveQuery))
	report("speculation", speculative(plain, false), speculative(plain, true))
	report("speculation + views", speculative(withViews, false), speculative(withViews, true))

	fmt.Println("\nreading: views absorb the join of the broad query; speculation compresses the")
	fmt.Println("selective one; together they cover the whole exploration (paper, Section 6.2).")
}

// run executes one query on a cold pool and returns its simulated duration.
func run(db *specdb.DB, q string) time.Duration {
	must(db.ColdStart())
	res, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}
	return res.Duration
}

// speculative formulates the query through a session with think-time.
func speculative(db *specdb.DB, selective bool) time.Duration {
	must(db.ColdStart())
	s := db.NewSession(specdb.SessionConfig{})
	defer s.Close()
	must(s.AddJoin("customer", "c_custkey", "orders", "o_custkey"))
	must(s.AddJoin("orders", "o_orderkey", "lineitem", "l_orderkey"))
	if selective {
		must(s.AddSelection("lineitem", "l_quantity", "=", 1))
	} else {
		must(s.AddSelection("lineitem", "l_quantity", ">=", 1))
	}
	s.Think(45 * time.Second)
	res, err := s.Go()
	if err != nil {
		log.Fatal(err)
	}
	return res.Duration
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
