// Exploration: a full exploratory-analysis session (the paper's Section 2
// environment). The analyst hunts for low-priced, high-volume order lines —
// evolving one query into the next, exactly the inter-query locality the
// speculation framework exploits: materializations persist while the parts
// they cover stay on the canvas, so later queries keep getting faster.
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"specdb"
)

func main() {
	db := specdb.Open(specdb.Options{})
	fmt.Println("loading the 100MB TPC-H subset...")
	if err := db.LoadTPCH("100MB", 42); err != nil {
		log.Fatal(err)
	}
	s := db.NewSession(specdb.SessionConfig{})
	defer s.Close()

	step := 0
	edit := func(what string, fn func() error) {
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [edit] %s\n", what)
	}
	think := func(d time.Duration) {
		fmt.Printf("  [think %v]\n", d)
		s.Think(d)
	}
	govern := func(desc string) {
		step++
		res, err := s.Go()
		if err != nil {
			log.Fatal(err)
		}
		rewritten := ""
		if strings.Contains(res.Plan, "spec_") {
			rewritten = "  ← rewritten with a speculative materialization"
		}
		fmt.Printf("Q%d %-52s %8v  %6d rows%s\n", step, desc, res.Duration, res.RowCount, rewritten)
	}

	fmt.Println("\n--- task: find cheap high-volume lines and who supplies them ---")

	// Q1: start broad — high-quantity lines.
	edit("quantity ≥ 40", func() error { return s.AddSelection("lineitem", "l_quantity", ">=", 40) })
	think(20 * time.Second)
	govern("high-quantity lineitems")

	// Q2: join in the orders; the quantity predicate persists, so its
	// materialization is reused.
	edit("join orders", func() error { return s.AddJoin("orders", "o_orderkey", "lineitem", "l_orderkey") })
	think(15 * time.Second)
	govern("… with their orders")

	// Q3: narrow to cheap orders.
	edit("total price < 20000", func() error {
		return s.AddSelection("orders", "o_totalprice", "<", 20000)
	})
	think(25 * time.Second)
	govern("… cheap orders only")

	// Q4: who supplies them? The canvas keeps everything else.
	edit("join supplier", func() error { return s.AddJoin("supplier", "s_suppkey", "lineitem", "l_suppkey") })
	edit("project supplier name/balance", func() error {
		return s.SetProjections("supplier.s_name", "supplier.s_acctbal")
	})
	think(20 * time.Second)
	govern("… and their suppliers")

	// Q5: the user reconsiders — drops the price filter, tightens quantity.
	edit("remove price filter", func() error {
		return s.RemoveSelection("orders", "o_totalprice", "<", 20000)
	})
	edit("quantity ≥ 45", func() error { return s.AddSelection("lineitem", "l_quantity", ">=", 45) })
	edit("remove quantity ≥ 40", func() error {
		return s.RemoveSelection("lineitem", "l_quantity", ">=", 40)
	})
	think(30 * time.Second)
	govern("revised: very high volume, any price")

	st := s.Stats()
	fmt.Printf("\nsession speculation: issued %d, completed %d, canceled (invalidated %d / at GO %d), GC'd %d\n",
		st.Issued, st.Completed, st.CanceledInvalidated, st.CanceledAtGo, st.GarbageCollected)
}
