// Quickstart: the paper's Section 1 scenario end to end.
//
// A user starts typing a query with a selective predicate. During their
// think-time the Speculator materializes the predicate's result; when the
// user hits GO, the final query is rewritten against the materialization and
// runs several times faster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"specdb"
)

func main() {
	db := specdb.Open(specdb.Options{})
	fmt.Println("loading the 100MB TPC-H subset...")
	if err := db.LoadTPCH("100MB", 42); err != nil {
		log.Fatal(err)
	}

	// Baseline: normal processing on a cold buffer pool.
	baseline, err := db.Exec("SELECT * FROM lineitem WHERE lineitem.l_quantity = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal processing:       %8v  (%d rows)\n", baseline.Duration, baseline.RowCount)

	if err := db.ColdStart(); err != nil {
		log.Fatal(err)
	}

	// Speculative processing: the user places the predicate on the canvas,
	// thinks for a while, then clicks GO.
	s := db.NewSession(specdb.SessionConfig{})
	defer s.Close()

	if err := s.AddSelection("lineitem", "l_quantity", "=", 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nuser is thinking... (the Speculator materializes σ(l_quantity=1) asynchronously)")
	s.Think(30 * time.Second)

	res, err := s.Go()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speculative processing:  %8v  (%d rows)\n", res.Duration, res.RowCount)
	fmt.Printf("improvement:             %8.1f%%\n",
		(1-float64(res.Duration)/float64(baseline.Duration))*100)
	fmt.Println("\nrewritten plan:")
	fmt.Print(res.Plan)

	st := s.Stats()
	fmt.Printf("\nspeculation: %d manipulation(s) issued, %d completed in time\n",
		st.Issued, st.Completed)
}
