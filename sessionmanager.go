package specdb

import (
	"context"
	"fmt"
	"sync"

	"specdb/internal/core"
)

// SessionManager opens and tracks concurrent sessions against one DB. All of
// its sessions share a single user profile — concurrent users train one
// Learner, the paper's multi-user deployment — while each session keeps its
// own deterministic simulated clock and speculator state. Speculative objects
// are namespaced per session ("spec_s<id>_..."), so concurrent manipulations
// never collide in the shared catalog.
//
// A SessionManager is safe for concurrent use.
type SessionManager struct {
	db      *DB
	learner *core.Learner

	mu       sync.Mutex
	sessions map[int64]*Session
	nextID   int64
}

// NewSessionManager creates a manager over db with a fresh shared profile.
// On a durable database the manager instead shares the DB's persistent
// profile, so what its sessions teach the Learner survives restarts.
func (db *DB) NewSessionManager() *SessionManager {
	learner := db.learner
	if learner == nil {
		learner = core.NewLearner(core.DefaultLearnerConfig())
	}
	return &SessionManager{
		db:       db,
		learner:  learner,
		sessions: make(map[int64]*Session),
	}
}

// Open starts a new session sharing the manager's learned profile.
func (m *SessionManager) Open(cfg SessionConfig) *Session {
	return m.OpenContext(context.Background(), cfg)
}

// OpenContext starts a new session bound to ctx: canceling ctx cancels the
// session's in-flight manipulation and fails every subsequent call on it.
func (m *SessionManager) OpenContext(ctx context.Context, cfg SessionConfig) *Session {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()
	s := m.db.newSession(ctx, cfg, m.learner, fmt.Sprintf("spec_s%d", id), m, id)
	m.mu.Lock()
	m.sessions[id] = s
	m.mu.Unlock()
	return s
}

// OpenSessions reports how many sessions are currently open.
func (m *SessionManager) OpenSessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Stats reports the speculation counters of every currently open session,
// keyed by session ID. Closed sessions are absent; snapshot before closing if
// their counters matter.
func (m *SessionManager) Stats() map[int64]Stats {
	m.mu.Lock()
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()
	// Collect outside m.mu: Session.Stats takes the session lock, and a
	// session closing concurrently calls back into m.remove.
	out := make(map[int64]Stats, len(open))
	for _, s := range open {
		out[s.ID()] = s.Stats()
	}
	return out
}

// remove deregisters a closed session.
func (m *SessionManager) remove(id int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, id)
}

// CloseAll closes every open session, releasing all their speculative
// objects, and returns the first error encountered.
func (m *SessionManager) CloseAll() error {
	// Snapshot first: Session.Close calls back into m.remove.
	m.mu.Lock()
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()
	var first error
	for _, s := range open {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
